//! The [`Telemetry`] handle: one registry + span tracker + rollups +
//! JSONL buffer behind a cheaply-cloneable handle, fed by read-only
//! observers.

use crate::export::{
    CheckpointRecord, DagRecord, EpochRecord, KillRestoreRecord, RollupRecord, SampleRecord,
    SpanRecord,
};
use crate::registry::MetricsRegistry;
use crate::trace::SpanTracker;
use serde::Serialize;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use taskdrop_pmf::Tick;
use taskdrop_sim::{
    AdmissionDropKind, DropKind, ForfeitKind, MetricsObserver, MigrationKind, SimCore, SimError,
    SimEvent, SimReport, TaskFate, TrialResult,
};

/// Fixed buckets for the `task_turnaround_ticks` histogram (arrival →
/// terminal event, in virtual ticks).
pub const TURNAROUND_BUCKETS: &[u64] = &[60, 120, 240, 480, 960, 1_920, 3_840];

/// Fixed buckets for the `checkpoint_bytes` histogram.
pub const CHECKPOINT_BYTES_BUCKETS: &[u64] =
    &[1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];

/// The stable label for a [`TaskFate`] (used in counters, span outcomes,
/// and the JSONL stream).
#[must_use]
pub fn fate_str(fate: TaskFate) -> &'static str {
    match fate {
        TaskFate::OnTime => "on_time",
        TaskFate::OnTimeApprox => "on_time_approx",
        TaskFate::Late => "late",
        TaskFate::DroppedReactive => "dropped_reactive",
        TaskFate::DroppedProactive => "dropped_proactive",
        TaskFate::LostToFailure => "lost_to_failure",
        TaskFate::Forfeited => "forfeited",
    }
}

fn event_kind(ev: &SimEvent) -> &'static str {
    match ev {
        SimEvent::Arrived { .. } => "arrived",
        SimEvent::Mapped { .. } => "mapped",
        SimEvent::Started { .. } => "started",
        SimEvent::Degraded { .. } => "degraded",
        SimEvent::Completed { .. } => "completed",
        SimEvent::Killed { .. } => "killed",
        SimEvent::Dropped { kind: DropKind::Reactive, .. } => "dropped_reactive",
        SimEvent::Dropped { kind: DropKind::Proactive, .. } => "dropped_proactive",
        SimEvent::MachineFailed { .. } => "machine_failed",
        SimEvent::MachineRepaired { .. } => "machine_repaired",
        SimEvent::MappingRound { .. } => "mapping_round",
        SimEvent::AdmissionDropped { .. } => "admission_dropped",
        SimEvent::CascadeForfeited { .. } => "cascade_forfeited",
        SimEvent::TaskMigrated { kind: MigrationKind::Donated, .. } => "migrated_out",
        SimEvent::TaskMigrated { kind: MigrationKind::Received, .. } => "migrated_in",
        _ => "other",
    }
}

fn admission_kind_str(kind: AdmissionDropKind) -> &'static str {
    match kind {
        AdmissionDropKind::RejectedFull => "rejected_full",
        AdmissionDropKind::ShedOldest => "shed_oldest",
        AdmissionDropKind::PreDropped => "pre_dropped",
        AdmissionDropKind::Expired => "expired",
        AdmissionDropKind::Invalid => "invalid",
    }
}

fn forfeit_kind_str(kind: ForfeitKind) -> &'static str {
    match kind {
        ForfeitKind::Cascade => "cascade",
        ForfeitKind::Pruned => "pruned",
        ForfeitKind::AdmissionShed => "admission_shed",
    }
}

#[derive(Debug, Default)]
struct TelemetryInner {
    registry: MetricsRegistry,
    trackers: BTreeMap<String, SpanTracker>,
    rollups: BTreeMap<String, MetricsObserver>,
    jsonl: String,
    spans_emitted: u64,
    sample_every: Option<Tick>,
    next_sample: Tick,
}

impl TelemetryInner {
    fn push_record<T: Serialize>(&mut self, rec: &T) {
        // lint:allow(panic-unwrap): derived Serialize on plain record structs is infallible
        let line = serde_json::to_string(rec).expect("telemetry records always serialize");
        self.jsonl.push_str(&line);
        self.jsonl.push('\n');
    }

    fn sample(&mut self, t: Tick) {
        let point = self.registry.sample(t);
        self.push_record(&SampleRecord { record: "sample".to_string(), t, metrics: point.metrics });
    }

    fn observe_event(&mut self, scope: &str, ev: &SimEvent, rollup: bool) {
        self.registry.counter_add(
            "sim_events_total",
            &[("scope", scope), ("kind", event_kind(ev))],
            1,
        );
        if let Some((_, fate)) = ev.resolved() {
            self.registry.counter_add(
                "tasks_resolved_total",
                &[("scope", scope), ("fate", fate_str(fate))],
                1,
            );
        }
        match ev {
            SimEvent::AdmissionDropped { kind, .. } => self.registry.counter_add(
                "admission_dropped_total",
                &[("scope", scope), ("kind", admission_kind_str(*kind))],
                1,
            ),
            SimEvent::CascadeForfeited { kind, .. } => self.registry.counter_add(
                "dag_forfeited_total",
                &[("scope", scope), ("kind", forfeit_kind_str(*kind))],
                1,
            ),
            SimEvent::TaskMigrated { kind, .. } => {
                let direction = match kind {
                    MigrationKind::Donated => "out",
                    MigrationKind::Received => "in",
                };
                self.registry.counter_add(
                    "tasks_migrated_total",
                    &[("scope", scope), ("direction", direction)],
                    1,
                );
            }
            _ => {}
        }
        let tracker = self.trackers.entry(scope.to_string()).or_default();
        if let Some(span) = tracker.on_event(ev) {
            self.registry.observe(
                "task_turnaround_ticks",
                &[("scope", scope)],
                TURNAROUND_BUCKETS,
                span.turnaround(),
            );
            self.spans_emitted += 1;
            self.push_record(&SpanRecord {
                record: "span".to_string(),
                scope: scope.to_string(),
                span,
            });
        }
        if rollup {
            if let Some(observer) = self.rollups.get_mut(scope) {
                use taskdrop_sim::SimObserver as _;
                observer.on_event(ev);
            }
        }
        if let Some(every) = self.sample_every {
            if let SimEvent::MappingRound { now } = ev {
                if *now >= self.next_sample {
                    self.sample(*now);
                    self.next_sample = (*now / every + 1) * every;
                }
            }
        }
    }
}

/// The telemetry pipeline behind a cheaply-cloneable handle.
///
/// One `Telemetry` owns a [`MetricsRegistry`], per-scope
/// [`SpanTracker`]s and [`MetricsObserver`] rollups, and the JSONL
/// export buffer. Clones share everything (single-threaded
/// `Rc<RefCell<…>>`, the `DagTap` pattern) — attach one clone per core,
/// keep one to sample and export.
///
/// **Determinism.** Every timestamp entering the pipeline is a virtual
/// tick supplied by the engine or the caller; nothing here reads the
/// wall clock or draws randomness. For a fixed seed the JSONL export is
/// byte-identical across runs, and because observers are read-only, an
/// instrumented run's engine state (fates, work counters, checkpoints)
/// is byte-identical to an uninstrumented one — *not attaching* is the
/// zero-cost disabled path.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Rc<RefCell<TelemetryInner>>,
}

impl Telemetry {
    /// A fresh, empty pipeline.
    #[must_use]
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Enables automatic sampling: the registry is flattened into the
    /// time series at the first mapping round on or after each multiple
    /// of `every` virtual ticks. (Callers can always [`Telemetry::sample`]
    /// manually, e.g. on `ServiceDriver` epoch boundaries.)
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_sample_every(self, every: Tick) -> Self {
        assert!(every > 0, "sampling interval must be positive");
        {
            let mut inner = self.inner.borrow_mut();
            inner.sample_every = Some(every);
            inner.next_sample = every;
        }
        self
    }

    /// Attaches full instrumentation to `core` under `scope`: per-event
    /// counters, lifecycle spans, the turnaround histogram, **and** a
    /// [`MetricsObserver`] rollup that reconstructs the core's
    /// [`TrialResult`] (retrieve it with [`Telemetry::finish_scope`]).
    ///
    /// Attach **before the first step** and use one scope per core: the
    /// rollup can only account for events it saw, and scopes share one
    /// task-id namespace per core.
    pub fn attach(&self, core: &mut SimCore<'_>, scope: &str) {
        let rollup = MetricsObserver::new(core.scenario(), core.config());
        self.inner.borrow_mut().rollups.insert(scope.to_string(), rollup);
        self.attach_impl(core, scope, true);
    }

    /// Attaches counters, spans and histograms only — no rollup. Safe to
    /// re-attach to a restored core mid-flight: counters then count
    /// replayed events again (at-least-once semantics), which a rollup's
    /// exactly-once fate table could not tolerate.
    pub fn attach_counters(&self, core: &mut SimCore<'_>, scope: &str) {
        self.attach_impl(core, scope, false);
    }

    fn attach_impl(&self, core: &mut SimCore<'_>, scope: &str, rollup: bool) {
        let handle = self.clone();
        let scope = scope.to_string();
        core.attach(move |ev: &SimEvent| {
            handle.inner.borrow_mut().observe_event(&scope, ev, rollup);
        });
    }

    /// Feeds one engine event into `scope`'s counters, spans and
    /// histograms *without* an attached observer — the entry point for
    /// drivers that buffer events off-thread (the parallel fleet's
    /// [`EventRelay`](taskdrop_sim::EventRelay) hubs) and hand them over
    /// at a single-threaded epoch barrier. Equivalent to the
    /// [`Telemetry::attach_counters`] path event-for-event: feeding a
    /// relay's buffer in order produces the same pipeline state as having
    /// observed the events live, which is what keeps fleet telemetry
    /// byte-identical at any worker count. No rollup is maintained
    /// (at-least-once semantics, as with `attach_counters`).
    pub fn scope_event(&self, scope: &str, ev: &SimEvent) {
        self.inner.borrow_mut().observe_event(scope, ev, false);
    }

    /// Flattens the registry into the time series at virtual time `t`
    /// and emits the matching `sample` JSONL record.
    pub fn sample(&self, t: Tick) {
        self.inner.borrow_mut().sample(t);
    }

    /// Reads gauges off a core's **read-only** snapshot: per-machine
    /// queue depths, batch depth, resolved/total tasks, and the
    /// cache-stats counters with their derived hit rates. Never calls
    /// anything that would touch the core's policy context (estimators
    /// mutate work counters; a sampler must not).
    pub fn sample_core(&self, core: &SimCore<'_>, scope: &str) {
        let state = core.state();
        let cache = core.cache_stats();
        let mut inner = self.inner.borrow_mut();
        for m in &state.machines {
            let label = m.machine.id.to_string();
            let depth = m.pending.len() + usize::from(m.running.is_some());
            inner.registry.gauge_set(
                "queue_depth",
                &[("scope", scope), ("machine", &label)],
                depth as f64,
            );
        }
        inner.registry.gauge_set("batch_depth", &[("scope", scope)], state.batch.len() as f64);
        inner.registry.gauge_set("tasks_total", &[("scope", scope)], state.total_tasks as f64);
        inner.registry.gauge_set(
            "tasks_resolved",
            &[("scope", scope)],
            state.resolved_tasks as f64,
        );
        let scope_label = [("scope", scope)];
        inner.registry.counter_set("cache_tail_hits_total", &scope_label, cache.tail_hits);
        inner.registry.counter_set("cache_tail_misses_total", &scope_label, cache.tail_misses);
        inner.registry.counter_set("cache_conv_hits_total", &scope_label, cache.conv_hits);
        inner.registry.counter_set("cache_conv_misses_total", &scope_label, cache.conv_misses);
        let tail_lookups = cache.tail_hits + cache.tail_misses;
        if tail_lookups > 0 {
            inner.registry.gauge_set(
                "cache_tail_hit_rate",
                &scope_label,
                cache.tail_hits as f64 / tail_lookups as f64,
            );
        }
        let conv_lookups = cache.conv_hits + cache.conv_misses;
        if conv_lookups > 0 {
            inner.registry.gauge_set(
                "cache_conv_hit_rate",
                &scope_label,
                cache.conv_hits as f64 / conv_lookups as f64,
            );
        }
    }

    /// Emits one `ServiceDriver` epoch record: per-shard backlog gauges
    /// and cumulative admission counters, the `epoch` JSONL line, and a
    /// time-series sample at the epoch boundary.
    pub fn record_epoch(&self, epoch: &EpochRecord) {
        let mut inner = self.inner.borrow_mut();
        for shard in &epoch.shards {
            let label = [("shard", shard.shard.as_str())];
            inner.registry.gauge_set("ingress_backlog", &label, shard.backlog as f64);
            inner.registry.counter_set("admission_offered_total", &label, shard.offered);
            inner.registry.counter_set("admission_admitted_total", &label, shard.admitted);
            inner.registry.counter_set("admission_turned_away_total", &label, shard.turned_away);
            if shard.stolen_in > 0 || shard.stolen_out > 0 {
                inner.registry.counter_set("shard_stolen_in_total", &label, shard.stolen_in);
                inner.registry.counter_set("shard_stolen_out_total", &label, shard.stolen_out);
            }
        }
        inner.push_record(epoch);
        inner.sample(epoch.to);
    }

    /// Emits one shard-checkpoint record and feeds the `checkpoint_bytes`
    /// histogram — the serialization cost is only ever measured when
    /// telemetry is enabled.
    pub fn record_checkpoint(&self, shard: &str, t: Tick, bytes: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.registry.counter_add("checkpoints_total", &[("shard", shard)], 1);
        inner.registry.observe(
            "checkpoint_bytes",
            &[("shard", shard)],
            CHECKPOINT_BYTES_BUCKETS,
            bytes,
        );
        inner.push_record(&CheckpointRecord {
            record: "checkpoint".to_string(),
            shard: shard.to_string(),
            t,
            bytes,
        });
    }

    /// Emits one kill/restore record.
    pub fn record_kill_restore(
        &self,
        shard: &str,
        revived_at: Tick,
        clock: Tick,
        post_mortem_events: u64,
    ) {
        let mut inner = self.inner.borrow_mut();
        inner.registry.counter_add("kill_restores_total", &[("shard", shard)], 1);
        inner.push_record(&KillRestoreRecord {
            record: "kill_restore".to_string(),
            shard: shard.to_string(),
            revived_at,
            clock,
            post_mortem_events,
        });
    }

    /// Mirrors cumulative graph-layer rates (from `DagStats`) into
    /// counters and emits the `dag` JSONL record.
    pub fn record_dag(&self, rec: &DagRecord) {
        let mut inner = self.inner.borrow_mut();
        let scope = [("scope", rec.scope.as_str())];
        inner.registry.counter_set("dag_released_total", &scope, rec.released);
        inner.registry.counter_set("dag_merged_total", &scope, rec.merged);
        inner.push_record(rec);
    }

    /// Finishes a scope attached with [`Telemetry::attach`]: emits the
    /// `rollup` JSONL record and returns the stream-reconstructed
    /// [`TrialResult`] (byte-equal to the engine's own — the
    /// `MetricsObserver` equivalence the integration tests pin).
    ///
    /// # Errors
    ///
    /// [`SimError::NotDrained`] if tasks are still in flight.
    ///
    /// # Panics
    ///
    /// Panics if `scope` was never attached with a rollup.
    pub fn finish_scope(&self, scope: &str) -> Result<TrialResult, SimError> {
        let mut inner = self.inner.borrow_mut();
        let result = inner
            .rollups
            .get(scope)
            // lint:allow(panic-macro): documented misuse panic — finishing a scope that was never attached is a caller bug, not a runtime state
            .unwrap_or_else(|| panic!("scope {scope:?} has no rollup (use Telemetry::attach)"))
            .result()?;
        inner.push_record(&RollupRecord {
            record: "rollup".to_string(),
            scope: scope.to_string(),
            result: result.clone(),
        });
        Ok(result)
    }

    /// Collects every rollup scope (in scope order) into a
    /// [`SimReport`] — the aggregate exporter.
    ///
    /// # Errors
    ///
    /// [`SimError::NotDrained`] if any scope still has tasks in flight.
    pub fn report(
        &self,
        scenario: &str,
        level: &str,
        mapper: &str,
        dropper: &str,
    ) -> Result<SimReport, SimError> {
        let inner = self.inner.borrow();
        let trials =
            inner.rollups.values().map(MetricsObserver::result).collect::<Result<Vec<_>, _>>()?;
        Ok(SimReport {
            scenario: scenario.to_string(),
            level: level.to_string(),
            mapper: mapper.to_string(),
            dropper: dropper.to_string(),
            trials,
        })
    }

    /// The JSONL export: every emitted record, one JSON object per line,
    /// byte-identical across runs with the same seed.
    #[must_use]
    pub fn jsonl(&self) -> String {
        self.inner.borrow().jsonl.clone()
    }

    /// The Prometheus-style text snapshot of the registry's current
    /// state.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.inner.borrow().registry.render_prometheus()
    }

    /// A counter's current value (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner.borrow().registry.counter(name, labels)
    }

    /// A gauge's current value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.inner.borrow().registry.gauge(name, labels)
    }

    /// Time-series samples recorded so far.
    #[must_use]
    pub fn series_len(&self) -> usize {
        self.inner.borrow().registry.series().len()
    }

    /// Finished lifecycle spans emitted so far (across all scopes).
    #[must_use]
    pub fn spans_emitted(&self) -> u64 {
        self.inner.borrow().spans_emitted
    }

    /// Runs `f` over the registry (read-only escape hatch for custom
    /// exporters and assertions).
    pub fn with_registry<R>(&self, f: impl FnOnce(&MetricsRegistry) -> R) -> R {
        f(&self.inner.borrow().registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_core::ProactiveDropper;
    use taskdrop_sched::Pam;
    use taskdrop_sim::SimConfig;
    use taskdrop_workload::{OversubscriptionLevel, Scenario, Workload};

    fn run_instrumented() -> (Telemetry, TrialResult) {
        let scenario = Scenario::specint(11);
        let level = OversubscriptionLevel::new("t", 80, 900);
        let workload = Workload::generate(&scenario, &level, 1.0, 17);
        let mapper = Pam;
        let dropper = ProactiveDropper::paper_default();
        let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        let mut core = SimCore::new(&scenario, &workload, &mapper, &dropper, config, 17)
            .expect("valid config");
        let tel = Telemetry::new().with_sample_every(200);
        tel.attach(&mut core, "trial");
        while !core.step().is_drained() {}
        let engine = core.result().expect("drained");
        (tel, engine)
    }

    #[test]
    fn rollup_reconstructs_the_engine_result() {
        let (tel, engine) = run_instrumented();
        let rollup = tel.finish_scope("trial").expect("drained");
        assert_eq!(rollup, engine);
        let report = tel.report("specint", "t", "PAM", "Heuristic").expect("drained");
        assert_eq!(report.trials, vec![engine]);
        assert_eq!(report.label(), "PAM+Heuristic");
    }

    #[test]
    fn counters_spans_and_samples_accumulate() {
        let (tel, engine) = run_instrumented();
        let total = engine.total_tasks as u64;
        let arrived = tel.counter("sim_events_total", &[("scope", "trial"), ("kind", "arrived")]);
        assert_eq!(arrived, total);
        assert_eq!(tel.spans_emitted(), total, "every task yields exactly one span");
        assert!(tel.series_len() > 0, "auto-sampling never fired");
        let resolved: u64 = [
            "on_time",
            "on_time_approx",
            "late",
            "dropped_reactive",
            "dropped_proactive",
            "lost_to_failure",
        ]
        .iter()
        .map(|fate| tel.counter("tasks_resolved_total", &[("scope", "trial"), ("fate", fate)]))
        .sum();
        assert_eq!(resolved, total);
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let (tel, _) = run_instrumented();
        tel.finish_scope("trial").expect("drained");
        let jsonl = tel.jsonl();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            let value: serde::value::Value = serde_json::from_str(line).expect("line parses");
            assert!(value.get("record").is_some(), "untagged record: {line}");
        }
    }

    #[test]
    fn prometheus_snapshot_renders() {
        let (tel, _) = run_instrumented();
        let text = tel.prometheus();
        assert!(text.contains("# TYPE sim_events_total counter"));
        assert!(text.contains("# TYPE task_turnaround_ticks histogram"));
    }
}
