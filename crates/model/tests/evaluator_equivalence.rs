//! Bit-identity of the fused [`ChainEvaluator`] against the naive
//! reference chain functions.
//!
//! The evaluator replaces per-step `Pmf` materialisation, the sort-based
//! coalesce and the compaction clone with reusable scratch buffers and a
//! dense accumulator. That is only sound because the *float summation
//! order* is preserved (DESIGN.md §12); these properties pin the outputs
//! bit-for-bit — `f64::to_bits`, not tolerances — across random queues and
//! all three [`Compaction`] policies.

use proptest::prelude::*;
use taskdrop_model::queue::{chain, chain_with_drops, chance_sum, ChainEvaluator, ChainTask};
use taskdrop_pmf::{Compaction, Pmf, Tick};

/// A random normalised PMF with up to 12 impulses on ticks 0..=400.
fn arb_pmf() -> impl Strategy<Value = Pmf> {
    prop::collection::vec((0u64..=400, 1u32..=1000), 1..=12).prop_map(|pairs| {
        let weights: Vec<(Tick, f64)> = pairs.into_iter().map(|(t, w)| (t, w as f64)).collect();
        Pmf::from_weights(weights).expect("positive weights")
    })
}

/// A random queue: execution PMFs plus deadlines spanning hopeless to roomy.
fn arb_queue() -> impl Strategy<Value = (Pmf, Vec<(Pmf, Tick)>)> {
    (arb_pmf(), prop::collection::vec((arb_pmf(), 0u64..=2_000), 1..=7))
}

fn arb_compaction() -> impl Strategy<Value = Compaction> {
    (0u8..3, 2usize..=32, 1u64..=64).prop_map(|(kind, max, width)| match kind {
        0 => Compaction::None,
        1 => Compaction::MaxImpulses(max),
        _ => Compaction::BinWidth(width),
    })
}

fn tasks_of(queue: &[(Pmf, Tick)]) -> Vec<ChainTask<'_>> {
    queue.iter().map(|(exec, deadline)| ChainTask { deadline: *deadline, exec }).collect()
}

fn pmf_bits(p: &Pmf) -> Vec<(Tick, u64)> {
    p.iter().map(|i| (i.t, i.p.to_bits())).collect()
}

proptest! {
    #[test]
    fn evaluator_chain_is_bit_identical(
        bq in arb_queue(),
        compaction in arb_compaction(),
    ) {
        let (base, queue) = bq;
        let tasks = tasks_of(&queue);
        let naive = chain(&base, &tasks, compaction);
        let mut eval = ChainEvaluator::new();
        let fused = eval.chain(&base, &tasks, compaction);
        prop_assert_eq!(naive.len(), fused.len());
        for (n, f) in naive.iter().zip(fused.iter()) {
            prop_assert_eq!(n.chance.to_bits(), f.chance.to_bits());
            prop_assert_eq!(pmf_bits(&n.completion), pmf_bits(&f.completion));
        }
    }

    #[test]
    fn evaluator_chance_sum_is_bit_identical(
        bq in arb_queue(),
        compaction in arb_compaction(),
        take in 0usize..=8,
    ) {
        let (base, queue) = bq;
        let tasks = tasks_of(&queue);
        let naive = chance_sum(&base, &tasks, take, compaction);
        let mut eval = ChainEvaluator::new();
        let fused = eval.chance_sum(&base, &tasks, take, compaction);
        prop_assert_eq!(naive.to_bits(), fused.to_bits());
    }

    #[test]
    fn evaluator_chain_with_drops_is_bit_identical(
        bq in arb_queue(),
        compaction in arb_compaction(),
        mask_seed in 0u64..u64::MAX,
    ) {
        let (base, queue) = bq;
        let tasks = tasks_of(&queue);
        let dropped: Vec<bool> = (0..tasks.len()).map(|i| mask_seed >> i & 1 == 1).collect();
        let naive = chain_with_drops(&base, &tasks, &dropped, compaction);
        let mut eval = ChainEvaluator::new();
        let fused = eval.chain_with_drops(&base, &tasks, &dropped, compaction);
        prop_assert_eq!(naive.len(), fused.len());
        for (n, f) in naive.iter().zip(fused.iter()) {
            match (n, f) {
                (None, None) => {}
                (Some(n), Some(f)) => {
                    prop_assert_eq!(n.chance.to_bits(), f.chance.to_bits());
                    prop_assert_eq!(pmf_bits(&n.completion), pmf_bits(&f.completion));
                }
                _ => prop_assert!(false, "drop masks disagree"),
            }
        }
    }

    /// `tail` equals the last link of the reference chain, and a reused
    /// evaluator (dirty buffers from a previous queue) stays bit-identical.
    #[test]
    fn evaluator_tail_and_reuse_are_bit_identical(
        bq in arb_queue(),
        bq2 in arb_queue(),
        compaction in arb_compaction(),
    ) {
        let (base, queue) = bq;
        let (base2, queue2) = bq2;
        let tasks = tasks_of(&queue);
        let mut eval = ChainEvaluator::new();
        let tail = eval.tail(&base, &tasks, compaction);
        let naive = chain(&base, &tasks, compaction);
        prop_assert_eq!(
            pmf_bits(&tail),
            pmf_bits(&naive.last().expect("non-empty queue").completion)
        );
        // Second, unrelated queue through the same evaluator.
        let tasks2 = tasks_of(&queue2);
        let naive2 = chain(&base2, &tasks2, compaction);
        let fused2 = eval.chain(&base2, &tasks2, compaction);
        for (n, f) in naive2.iter().zip(fused2.iter()) {
            prop_assert_eq!(n.chance.to_bits(), f.chance.to_bits());
            prop_assert_eq!(pmf_bits(&n.completion), pmf_bits(&f.completion));
        }
    }

    /// The incremental API (`begin`/`step`/`step_from`/`chance_from`)
    /// matches the reference step arithmetic bit-for-bit.
    #[test]
    fn incremental_api_is_bit_identical(
        bq in arb_queue(),
        compaction in arb_compaction(),
    ) {
        let (base, queue) = bq;
        let tasks = tasks_of(&queue);
        let naive = chain(&base, &tasks, compaction);
        let mut eval = ChainEvaluator::new();
        let mut probe = ChainEvaluator::new();
        eval.begin(&base);
        let mut prev = base.clone();
        for (i, &t) in tasks.iter().enumerate() {
            let chance = eval.step(t, compaction);
            prop_assert_eq!(chance.to_bits(), naive[i].chance.to_bits());
            prop_assert_eq!(pmf_bits(&eval.completion_pmf()), pmf_bits(&naive[i].completion));
            // One-shot helpers from the same predecessor agree too.
            let (c2, completion) = probe.step_from(&prev, t, compaction);
            prop_assert_eq!(c2.to_bits(), naive[i].chance.to_bits());
            prop_assert_eq!(pmf_bits(&completion), pmf_bits(&naive[i].completion));
            prop_assert_eq!(probe.chance_from(&prev, t).to_bits(), naive[i].chance.to_bits());
            prev = naive[i].completion.clone();
        }
    }
}
