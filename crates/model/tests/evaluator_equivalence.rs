//! Bit-identity of the fused [`ChainEvaluator`] against the naive
//! reference chain functions, and of persistent-[`PolicyCtx`] policy
//! decisions against the fresh-evaluator reference path.
//!
//! The evaluator replaces per-step `Pmf` materialisation, the sort-based
//! coalesce and the compaction clone with reusable scratch buffers and a
//! dense accumulator. That is only sound because the *float summation
//! order* is preserved (DESIGN.md §12); these properties pin the outputs
//! bit-for-bit — `f64::to_bits`, not tolerances — across random queues and
//! all three [`Compaction`] policies.
//!
//! The **differential suite** at the bottom drives all four droppers
//! through proptest-generated queue-mutation scripts (inject / complete /
//! advance / drop / fail / repair interleavings) with ONE long-lived
//! [`PolicyCtx`] shared across every call — exactly how a `SimCore`
//! threads it — and requires each decision to equal the decision of a
//! fresh context (DESIGN.md §13). Nothing a previous call leaves in the
//! scratch buffers may influence a later decision.

use proptest::prelude::*;
use taskdrop_core::{
    ApproxDropper, DropPolicy, OptimalDropper, ProactiveDropper, ReactiveOnly, ThresholdDropper,
};
use taskdrop_model::approx::degraded_pet;
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::queue::{chain, chain_with_drops, chance_sum, ChainEvaluator, ChainTask};
use taskdrop_model::view::{DropContext, PendingView, QueueView, RunningView};
use taskdrop_model::{ApproxSpec, MachineId, MachineTypeId, PetMatrix, TaskId, TaskTypeId};
use taskdrop_pmf::{Compaction, Pmf, Tick};

/// A random normalised PMF with up to 12 impulses on ticks 0..=400.
fn arb_pmf() -> impl Strategy<Value = Pmf> {
    prop::collection::vec((0u64..=400, 1u32..=1000), 1..=12).prop_map(|pairs| {
        let weights: Vec<(Tick, f64)> = pairs.into_iter().map(|(t, w)| (t, w as f64)).collect();
        Pmf::from_weights(weights).expect("positive weights")
    })
}

/// A random queue: execution PMFs plus deadlines spanning hopeless to roomy.
fn arb_queue() -> impl Strategy<Value = (Pmf, Vec<(Pmf, Tick)>)> {
    (arb_pmf(), prop::collection::vec((arb_pmf(), 0u64..=2_000), 1..=7))
}

fn arb_compaction() -> impl Strategy<Value = Compaction> {
    (0u8..3, 2usize..=32, 1u64..=64).prop_map(|(kind, max, width)| match kind {
        0 => Compaction::None,
        1 => Compaction::MaxImpulses(max),
        _ => Compaction::BinWidth(width),
    })
}

fn tasks_of(queue: &[(Pmf, Tick)]) -> Vec<ChainTask<'_>> {
    queue.iter().map(|(exec, deadline)| ChainTask { deadline: *deadline, exec }).collect()
}

fn pmf_bits(p: &Pmf) -> Vec<(Tick, u64)> {
    p.iter().map(|i| (i.t, i.p.to_bits())).collect()
}

/// A small stochastic PET (4 task types × 1 machine type) so chances are
/// non-trivial for the dropper differential suite.
fn dropper_pet() -> PetMatrix {
    PetMatrix::new(
        4,
        1,
        vec![
            Pmf::point(10),
            Pmf::point(60),
            Pmf::from_impulses(vec![(15, 0.5), (45, 0.5)]).unwrap(),
            Pmf::from_impulses(vec![(5, 0.25), (25, 0.5), (100, 0.25)]).unwrap(),
        ],
    )
}

/// A miniature machine-queue state machine the mutation scripts drive:
/// rich enough to produce every queue shape a `SimCore` can hand a policy
/// (idle/busy/stochastic runner, degraded entries, post-failure queues).
#[derive(Default)]
struct QueueSim {
    now: Tick,
    /// Running task: (completion PMF, deadline). `None` after a failure or
    /// while idle.
    running: Option<(Pmf, Tick)>,
    /// Pending entries: (task type, absolute deadline, degraded).
    pending: Vec<(u16, Tick, bool)>,
}

impl QueueSim {
    fn apply(&mut self, op: u8, tt: u16, val: u64) {
        match op {
            // Inject: a new arrival joins the queue tail.
            0 => {
                if self.pending.len() < 6 {
                    self.pending.push((tt % 4, self.now + 10 + val % 350, false));
                }
            }
            // Complete: the runner finishes; the head starts, possibly as
            // a stochastic execution (exercises non-point bases).
            1 => {
                self.running = None;
                if !self.pending.is_empty() {
                    let (_, deadline, _) = self.pending.remove(0);
                    let done = self.now + 1 + val % 80;
                    let completion = if val % 2 == 0 {
                        Pmf::point(done)
                    } else {
                        Pmf::from_impulses(vec![(done, 0.5), (done + 30, 0.5)]).unwrap()
                    };
                    self.running = Some((completion, deadline));
                }
            }
            // Advance the clock; a runner whose support is exhausted ends.
            2 => {
                self.now += 1 + val % 60;
                if let Some((completion, _)) = &self.running {
                    if completion.support_max().is_some_and(|t| t <= self.now) {
                        self.running = None;
                    }
                }
            }
            // Fail: the machine loses its running task (queue frozen).
            3 => self.running = None,
            // Repair/start: an idle machine picks up its head, degraded
            // half the time (exercises the degraded-PET chain path).
            4 => {
                if self.running.is_none() && !self.pending.is_empty() {
                    let (_, deadline, _) = self.pending.remove(0);
                    self.running = Some((Pmf::point(self.now + 1 + val % 50), deadline));
                } else if let Some(entry) = self.pending.get_mut((val % 6) as usize) {
                    entry.2 = true;
                }
            }
            // Drop: a pending entry vanishes (external decision).
            _ => {
                if !self.pending.is_empty() {
                    let idx = (val as usize) % self.pending.len();
                    self.pending.remove(idx);
                }
            }
        }
    }

    /// The policy-facing view; the differential loop splices `approx_pet`
    /// in separately per approx-on/off case.
    fn view<'a>(&self, pet: &'a PetMatrix) -> QueueView<'a> {
        QueueView {
            machine: MachineId(0),
            machine_type: MachineTypeId(0),
            now: self.now,
            running: self.running.as_ref().map(|(completion, deadline)| RunningView {
                id: TaskId(9_999),
                type_id: TaskTypeId(0),
                deadline: *deadline,
                completion: completion.clone(),
            }),
            pending: self
                .pending
                .iter()
                .enumerate()
                .map(|(i, &(tt, deadline, degraded))| PendingView {
                    id: TaskId(i as u64),
                    type_id: TaskTypeId(tt),
                    deadline,
                    degraded,
                })
                .collect(),
            pet,
            approx_pet: None,
        }
    }
}

proptest! {
    #[test]
    fn evaluator_chain_is_bit_identical(
        bq in arb_queue(),
        compaction in arb_compaction(),
    ) {
        let (base, queue) = bq;
        let tasks = tasks_of(&queue);
        let naive = chain(&base, &tasks, compaction);
        let mut eval = ChainEvaluator::new();
        let fused = eval.chain(&base, &tasks, compaction);
        prop_assert_eq!(naive.len(), fused.len());
        for (n, f) in naive.iter().zip(fused.iter()) {
            prop_assert_eq!(n.chance.to_bits(), f.chance.to_bits());
            prop_assert_eq!(pmf_bits(&n.completion), pmf_bits(&f.completion));
        }
    }

    #[test]
    fn evaluator_chance_sum_is_bit_identical(
        bq in arb_queue(),
        compaction in arb_compaction(),
        take in 0usize..=8,
    ) {
        let (base, queue) = bq;
        let tasks = tasks_of(&queue);
        let naive = chance_sum(&base, &tasks, take, compaction);
        let mut eval = ChainEvaluator::new();
        let fused = eval.chance_sum(&base, &tasks, take, compaction);
        prop_assert_eq!(naive.to_bits(), fused.to_bits());
    }

    #[test]
    fn evaluator_chain_with_drops_is_bit_identical(
        bq in arb_queue(),
        compaction in arb_compaction(),
        mask_seed in 0u64..u64::MAX,
    ) {
        let (base, queue) = bq;
        let tasks = tasks_of(&queue);
        let dropped: Vec<bool> = (0..tasks.len()).map(|i| mask_seed >> i & 1 == 1).collect();
        let naive = chain_with_drops(&base, &tasks, &dropped, compaction);
        let mut eval = ChainEvaluator::new();
        let fused = eval.chain_with_drops(&base, &tasks, &dropped, compaction);
        prop_assert_eq!(naive.len(), fused.len());
        for (n, f) in naive.iter().zip(fused.iter()) {
            match (n, f) {
                (None, None) => {}
                (Some(n), Some(f)) => {
                    prop_assert_eq!(n.chance.to_bits(), f.chance.to_bits());
                    prop_assert_eq!(pmf_bits(&n.completion), pmf_bits(&f.completion));
                }
                _ => prop_assert!(false, "drop masks disagree"),
            }
        }
    }

    /// `tail` equals the last link of the reference chain, and a reused
    /// evaluator (dirty buffers from a previous queue) stays bit-identical.
    #[test]
    fn evaluator_tail_and_reuse_are_bit_identical(
        bq in arb_queue(),
        bq2 in arb_queue(),
        compaction in arb_compaction(),
    ) {
        let (base, queue) = bq;
        let (base2, queue2) = bq2;
        let tasks = tasks_of(&queue);
        let mut eval = ChainEvaluator::new();
        let tail = eval.tail(&base, &tasks, compaction);
        let naive = chain(&base, &tasks, compaction);
        prop_assert_eq!(
            pmf_bits(&tail),
            pmf_bits(&naive.last().expect("non-empty queue").completion)
        );
        // Second, unrelated queue through the same evaluator.
        let tasks2 = tasks_of(&queue2);
        let naive2 = chain(&base2, &tasks2, compaction);
        let fused2 = eval.chain(&base2, &tasks2, compaction);
        for (n, f) in naive2.iter().zip(fused2.iter()) {
            prop_assert_eq!(n.chance.to_bits(), f.chance.to_bits());
            prop_assert_eq!(pmf_bits(&n.completion), pmf_bits(&f.completion));
        }
    }

    /// Every dropper's decision with a **persistent** `PolicyCtx` (one
    /// context shared across the whole mutation script *and* across all
    /// policies, as adversarial as reuse gets) equals its decision with a
    /// fresh context, at every step of a random
    /// inject/complete/advance/drop/fail/repair interleaving, under all
    /// three `Compaction` policies. Chain arithmetic through the
    /// persistent scratch is additionally pinned to the naive reference
    /// with `f64::to_bits`.
    #[test]
    fn persistent_ctx_decisions_match_fresh_ctx(
        ops in prop::collection::vec((0u8..6, 0u16..4, 0u64..400), 1..20),
        compaction in arb_compaction(),
    ) {
        let pet = dropper_pet();
        let spec = ApproxSpec::new(0.5, 0.6);
        let apet = degraded_pet(&pet, spec);
        let mut sim = QueueSim::default();
        let mut persistent = PolicyCtx::new();
        let policies: Vec<Box<dyn DropPolicy>> = vec![
            Box::new(ReactiveOnly),
            Box::new(ProactiveDropper::paper_default()),
            Box::new(ApproxDropper::paper_default()),
            Box::new(ThresholdDropper::paper_default()),
            Box::new(OptimalDropper::new()),
        ];
        for &(op, tt, val) in &ops {
            sim.apply(op, tt, val);
            if sim.pending.is_empty() {
                continue;
            }
            let view = sim.view(&pet);
            for (with_approx, pressure) in [(false, 0.0), (true, 1.5)] {
                let dctx = DropContext {
                    compaction,
                    pressure,
                    approx: if with_approx { Some(spec) } else { None },
                };
                let view = QueueView {
                    approx_pet: if with_approx { Some(&apet) } else { None },
                    ..view.clone()
                };
                for p in &policies {
                    let warm = p.select_drops(&view, &dctx, &mut persistent);
                    let cold = p.select_drops_fresh(&view, &dctx);
                    prop_assert_eq!(
                        &warm, &cold,
                        "{} diverged under persistent ctx (op {} tt {} val {})",
                        p.name(), op, tt, val
                    );
                }
            }
            // The persistent scratch's chain arithmetic stays bit-identical
            // to the naive reference after arbitrary interleaved reuse.
            let tasks = view.chain_tasks();
            let base = view.base();
            let naive = chain(&base, &tasks, compaction);
            let fused = persistent.eval.chain(&base, &tasks, compaction);
            for (n, f) in naive.iter().zip(fused.iter()) {
                prop_assert_eq!(n.chance.to_bits(), f.chance.to_bits());
                prop_assert_eq!(pmf_bits(&n.completion), pmf_bits(&f.completion));
            }
            // Interleave a confirmed decision into the script: apply the
            // heuristic's drops so later mutations see the pruned queue.
            let dctx = DropContext::plain(compaction);
            let decided =
                ProactiveDropper::paper_default().select_drops(&view, &dctx, &mut persistent);
            for &idx in decided.drops.iter().rev() {
                sim.pending.remove(idx);
            }
        }
    }

    /// The incremental API (`begin`/`step`/`step_from`/`chance_from`)
    /// matches the reference step arithmetic bit-for-bit.
    #[test]
    fn incremental_api_is_bit_identical(
        bq in arb_queue(),
        compaction in arb_compaction(),
    ) {
        let (base, queue) = bq;
        let tasks = tasks_of(&queue);
        let naive = chain(&base, &tasks, compaction);
        let mut eval = ChainEvaluator::new();
        let mut probe = ChainEvaluator::new();
        eval.begin(&base);
        let mut prev = base.clone();
        for (i, &t) in tasks.iter().enumerate() {
            let chance = eval.step(t, compaction);
            prop_assert_eq!(chance.to_bits(), naive[i].chance.to_bits());
            prop_assert_eq!(pmf_bits(&eval.completion_pmf()), pmf_bits(&naive[i].completion));
            // One-shot helpers from the same predecessor agree too.
            let (c2, completion) = probe.step_from(&prev, t, compaction);
            prop_assert_eq!(c2.to_bits(), naive[i].chance.to_bits());
            prop_assert_eq!(pmf_bits(&completion), pmf_bits(&naive[i].completion));
            prop_assert_eq!(probe.chance_from(&prev, t).to_bits(), naive[i].chance.to_bits());
            prev = naive[i].completion.clone();
        }
    }
}
