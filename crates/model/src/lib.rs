//! Domain model for an oversubscribed heterogeneous computing (HC) system.
//!
//! This crate holds the shared vocabulary of the `taskdrop` workspace:
//!
//! * identifiers and records for tasks, task types, machines and machine
//!   types ([`Task`], [`TaskType`], [`Machine`], [`MachineType`]);
//! * the **PET matrix** ([`PetMatrix`]) — Probabilistic Execution Time — one
//!   execution-time PMF per (task type, machine type) pair, exactly as in
//!   Salehi et al. and the reproduced paper;
//! * the machine-queue **completion-time chain** ([`queue`]) that applies the
//!   paper's Equation (1) along a queue, computes each task's chance of
//!   success (Eq 2), the queue's instantaneous robustness (Eq 3), and the
//!   same quantities under provisional drops (Eqs 4–7);
//! * the read-only **views** ([`view`]) the simulator hands to mapping
//!   heuristics and dropping policies, keeping `taskdrop-sched` and
//!   `taskdrop-core` decoupled from the simulator;
//! * the persistent **evaluation context** ([`ctx`]) — the scratch
//!   evaluators and keyed PET×tail convolution cache ([`PolicyCtx`])
//!   threaded through every policy and mapper call.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod approx;
pub mod ctx;
mod ids;
mod machine;
mod pet;
pub mod queue;
mod task;
pub mod view;

pub use approx::ApproxSpec;
pub use ctx::{CacheStats, PolicyCtx, TailCache};
pub use ids::{MachineId, MachineTypeId, TaskId, TaskTypeId};
pub use machine::{Machine, MachineType};
pub use pet::PetMatrix;
pub use task::{Task, TaskType};
