//! Machines and machine types.

use crate::{MachineId, MachineTypeId};
use serde::{Deserialize, Serialize};

/// A *machine type* — a hardware/VM class with its own execution-time
/// distributions (PET matrix column) and an hourly price for the cost
/// analysis of the paper's Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineType {
    /// Identifier; also the column index in the PET matrix.
    pub id: MachineTypeId,
    /// Human-readable name (e.g. `"opteron-2347"`, `"gpu-g4"`).
    pub name: String,
    /// Price in dollars per hour of busy time (AWS-style billing).
    pub price_per_hour: f64,
}

/// One machine instance. Several machines may share a machine type (the
/// video-transcoding scenario has two machines of each of its four types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Machine {
    /// Unique identifier.
    pub id: MachineId,
    /// The machine's type (PET matrix column).
    pub type_id: MachineTypeId,
}

impl Machine {
    /// Creates a machine instance.
    #[must_use]
    pub fn new(id: MachineId, type_id: MachineTypeId) -> Self {
        Machine { id, type_id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_carries_type() {
        let m = Machine::new(MachineId(3), MachineTypeId(1));
        assert_eq!(m.id, MachineId(3));
        assert_eq!(m.type_id, MachineTypeId(1));
    }
}
