//! Approximate computing — the paper's future-work extension.
//!
//! The conclusion of the paper: *"In future, we plan to extend the
//! probabilistic analysis to consider approximately computing tasks, in
//! addition to task dropping."* An approximate (degraded) task variant runs
//! in a fraction of the full execution time — e.g. transcoding at a lower
//! quality preset — and yields a fraction of the full utility. Instead of
//! discarding a doomed task outright, the system may degrade it: the queue
//! behind it still gains most of the slack, and the task itself salvages
//! partial value.

use crate::PetMatrix;
use serde::{Deserialize, Serialize};

/// Parameters of the approximate execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproxSpec {
    /// Execution-time multiplier of the degraded variant, in `(0, 1)`.
    pub time_factor: f64,
    /// Utility of a degraded on-time completion relative to a full one, in
    /// `(0, 1)`.
    pub value: f64,
}

impl ApproxSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters lie strictly between 0 and 1 (a factor
    /// of 1 would make degradation pointless, 0 would make it free).
    #[must_use]
    pub fn new(time_factor: f64, value: f64) -> Self {
        assert!(time_factor > 0.0 && time_factor < 1.0, "approx time factor must be in (0, 1)");
        assert!(value > 0.0 && value < 1.0, "approx value must be in (0, 1)");
        ApproxSpec { time_factor, value }
    }

    /// A typical setting: half the execution time for 60 % of the value.
    #[must_use]
    pub fn half_time() -> Self {
        ApproxSpec::new(0.5, 0.6)
    }
}

/// Builds the degraded PET matrix: every cell's execution-time PMF scaled by
/// `spec.time_factor`. Computed once per simulation and shared by the engine
/// and the dropping policy.
#[must_use]
pub fn degraded_pet(pet: &PetMatrix, spec: ApproxSpec) -> PetMatrix {
    let cells = (0..pet.task_types())
        .flat_map(|t| {
            (0..pet.machine_types()).map(move |m| {
                pet.pmf(crate::TaskTypeId(t as u16), crate::MachineTypeId(m as u16))
                    .time_scale(spec.time_factor)
            })
        })
        .collect();
    PetMatrix::new(pet.task_types(), pet.machine_types(), cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineTypeId, TaskTypeId};
    use taskdrop_pmf::Pmf;

    #[test]
    fn degraded_pet_scales_every_cell() {
        let pet = PetMatrix::new(
            2,
            2,
            vec![Pmf::point(100), Pmf::point(200), Pmf::point(50), Pmf::point(80)],
        );
        let degraded = degraded_pet(&pet, ApproxSpec::new(0.5, 0.6));
        for t in 0..2u16 {
            for m in 0..2u16 {
                let full = pet.mean_exec(TaskTypeId(t), MachineTypeId(m));
                let half = degraded.mean_exec(TaskTypeId(t), MachineTypeId(m));
                assert!((half - full / 2.0).abs() < 1.0, "cell ({t},{m}): {half} vs {full}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "time factor")]
    fn rejects_factor_one() {
        let _ = ApproxSpec::new(1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "value")]
    fn rejects_zero_value() {
        let _ = ApproxSpec::new(0.5, 0.0);
    }

    #[test]
    fn half_time_is_valid() {
        let s = ApproxSpec::half_time();
        assert!(s.time_factor < 1.0 && s.value < 1.0);
    }
}
