//! Read-only views the simulator hands to pluggable policies.
//!
//! Mapping heuristics (`taskdrop-sched`) and dropping policies
//! (`taskdrop-core`) never see the simulator's internal state; at every
//! mapping event the engine assembles these snapshot views. This keeps the
//! policy crates independent of the engine and makes policies trivially
//! testable with hand-built snapshots.

use crate::queue::ChainTask;
use crate::{MachineId, MachineTypeId, PetMatrix, TaskId, TaskTypeId};
use taskdrop_pmf::{Compaction, Pmf, Tick};

/// A pending (queued, not yet running) task in a machine queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingView {
    /// Task identifier.
    pub id: TaskId,
    /// Task type (selects the PET matrix row).
    pub type_id: TaskTypeId,
    /// Hard deadline.
    pub deadline: Tick,
    /// Whether the task has been degraded to its approximate variant (see
    /// [`crate::approx`]); degraded tasks chain with the degraded PET.
    pub degraded: bool,
}

impl PendingView {
    /// A full-fidelity (non-degraded) pending task.
    #[must_use]
    pub fn full(id: TaskId, type_id: TaskTypeId, deadline: Tick) -> Self {
        PendingView { id, type_id, deadline, degraded: false }
    }
}

/// The task currently executing on a machine, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningView {
    /// Task identifier.
    pub id: TaskId,
    /// Task type.
    pub type_id: TaskTypeId,
    /// Hard deadline.
    pub deadline: Tick,
    /// Completion-time PMF, already conditioned on "not finished by now".
    pub completion: Pmf,
}

impl RunningView {
    /// Chance of success of the running task (Eq 2 applied to its
    /// conditioned completion PMF).
    #[must_use]
    pub fn chance(&self) -> f64 {
        self.completion.mass_before(self.deadline)
    }
}

/// Snapshot of one machine queue at a mapping event.
#[derive(Debug, Clone)]
pub struct QueueView<'a> {
    /// The machine this queue belongs to.
    pub machine: MachineId,
    /// Its machine type (selects the PET matrix column).
    pub machine_type: MachineTypeId,
    /// Current simulation time.
    pub now: Tick,
    /// The running task, or `None` if the machine is idle.
    pub running: Option<RunningView>,
    /// Pending tasks in queue order (position 0 runs next).
    pub pending: Vec<PendingView>,
    /// The PET matrix (shared, immutable).
    pub pet: &'a PetMatrix,
    /// Degraded-variant PET (execution times scaled by the approximate
    /// computing factor); `None` when approximate computing is disabled.
    /// Tasks flagged `degraded` chain with this matrix.
    pub approx_pet: Option<&'a PetMatrix>,
}

impl<'a> QueueView<'a> {
    /// Completion PMF of whatever precedes the first pending task: the
    /// running task's conditioned completion, or a point mass at *now* for
    /// an idle machine.
    #[must_use]
    pub fn base(&self) -> Pmf {
        match &self.running {
            Some(r) => r.completion.clone(),
            None => Pmf::point(self.now),
        }
    }

    /// The pending tasks as chain inputs (deadline + PET execution PMF).
    /// Degraded tasks pull from the degraded PET when one is present (and
    /// fall back to the full PET otherwise).
    #[must_use]
    pub fn chain_tasks(&self) -> Vec<ChainTask<'a>> {
        self.pending
            .iter()
            .map(|p| {
                let pet = if p.degraded { self.approx_pet.unwrap_or(self.pet) } else { self.pet };
                ChainTask { deadline: p.deadline, exec: pet.pmf(p.type_id, self.machine_type) }
            })
            .collect()
    }

    /// Total number of occupied slots (running + pending).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        usize::from(self.running.is_some()) + self.pending.len()
    }
}

/// Context shared by all queues at one dropping invocation.
#[derive(Debug, Clone, Copy)]
pub struct DropContext {
    /// Compaction policy for chain computations.
    pub compaction: Compaction,
    /// Oversubscription pressure signal: ratio of unmapped batch-queue tasks
    /// to total machine-queue capacity (>= 0). Used by the adaptive
    /// threshold baseline; the paper's autonomous mechanism ignores it.
    pub pressure: f64,
    /// Approximate-computing parameters, when that extension is enabled.
    pub approx: Option<crate::ApproxSpec>,
}

impl DropContext {
    /// Context without pressure or approximate computing (the common case in
    /// tests and single-queue analyses).
    #[must_use]
    pub fn plain(compaction: Compaction) -> Self {
        DropContext { compaction, pressure: 0.0, approx: None }
    }
}

/// Snapshot of one machine for the mapping phase.
#[derive(Debug, Clone)]
pub struct MachineView {
    /// The machine.
    pub machine: MachineId,
    /// Its machine type.
    pub machine_type: MachineTypeId,
    /// Free queue slots the mapper may fill.
    pub free_slots: usize,
    /// Completion PMF of the queue tail (when the machine would start a
    /// newly appended task): running/pending chain end, or point at *now*.
    pub tail: Pmf,
}

/// An unmapped task in the batch queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnmappedView {
    /// Task identifier.
    pub id: TaskId,
    /// Task type.
    pub type_id: TaskTypeId,
    /// Arrival tick (FCFS ordering key).
    pub arrival: Tick,
    /// Hard deadline.
    pub deadline: Tick,
}

/// Input to a mapping heuristic: machines with free slots and the batch
/// queue, plus the PET matrix.
#[derive(Debug)]
pub struct MappingInput<'a> {
    /// Current simulation time.
    pub now: Tick,
    /// The PET matrix.
    pub pet: &'a PetMatrix,
    /// Machine snapshots (all machines; some may have zero free slots).
    pub machines: Vec<MachineView>,
    /// Unmapped tasks in arrival order.
    pub unmapped: &'a [UnmappedView],
    /// Compaction policy for any PMF chaining the heuristic performs.
    pub compaction: Compaction,
}

/// One task-to-machine assignment produced by a mapping heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Index into [`MappingInput::unmapped`].
    pub task_idx: usize,
    /// Destination machine.
    pub machine: MachineId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_pmf::Pmf;

    fn tiny_pet() -> PetMatrix {
        PetMatrix::new(1, 1, vec![Pmf::point(10)])
    }

    #[test]
    fn idle_base_is_point_at_now() {
        let pet = tiny_pet();
        let q = QueueView {
            machine: MachineId(0),
            machine_type: MachineTypeId(0),
            now: 42,
            running: None,
            pending: vec![],
            pet: &pet,
            approx_pet: None,
        };
        assert_eq!(q.base(), Pmf::point(42));
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    fn running_base_is_conditioned_completion() {
        let pet = tiny_pet();
        let completion = Pmf::from_impulses(vec![(50, 0.5), (60, 0.5)]).unwrap();
        let q = QueueView {
            machine: MachineId(0),
            machine_type: MachineTypeId(0),
            now: 45,
            running: Some(RunningView {
                id: TaskId(1),
                type_id: TaskTypeId(0),
                deadline: 55,
                completion: completion.clone(),
            }),
            pending: vec![PendingView::full(TaskId(2), TaskTypeId(0), 80)],
            pet: &pet,
            approx_pet: None,
        };
        assert_eq!(q.base(), completion);
        assert_eq!(q.occupancy(), 2);
        assert!((q.running.as_ref().unwrap().chance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chain_tasks_pull_pet_cells() {
        let pet = tiny_pet();
        let q = QueueView {
            machine: MachineId(0),
            machine_type: MachineTypeId(0),
            now: 0,
            running: None,
            pending: vec![PendingView::full(TaskId(7), TaskTypeId(0), 99)],
            pet: &pet,
            approx_pet: None,
        };
        let tasks = q.chain_tasks();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].deadline, 99);
        assert_eq!(tasks[0].exec.support_min(), Some(10));
    }
}
