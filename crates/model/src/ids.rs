//! Strongly-typed identifiers.
//!
//! Index-like newtypes (`u16`/`u64` per the perf guide's "smaller integers"
//! advice) that prevent mixing task types with machine types at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index value.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a *task type* (row of the PET matrix).
    TaskTypeId, u16, "tt"
);
id_type!(
    /// Identifier of a *machine type* (column of the PET matrix).
    MachineTypeId, u16, "mt"
);
id_type!(
    /// Identifier of an individual task instance.
    TaskId, u64, "task"
);
id_type!(
    /// Identifier of an individual machine.
    MachineId, u16, "m"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(TaskTypeId(3).to_string(), "tt3");
        assert_eq!(MachineTypeId(1).to_string(), "mt1");
        assert_eq!(TaskId(9).to_string(), "task9");
        assert_eq!(MachineId(0).to_string(), "m0");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(TaskTypeId::from(7u16).index(), 7);
        assert_eq!(TaskId::from(1234u64).index(), 1234);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TaskId(1) < TaskId(2));
    }
}
