//! Machine-queue completion-time chains — Equations (1)–(7) of the paper.
//!
//! A machine queue holds a *running* task followed by pending tasks served
//! first-come-first-serve. The completion-time PMF of each pending task is
//! obtained by chaining the deadline-aware convolution of Equation (1) from
//! the queue head to the tail; its *chance of success* (Eq 2) is the mass of
//! that PMF strictly before the task's deadline; the queue's *instantaneous
//! robustness* (Eq 3) is the sum of those chances.
//!
//! The same chain evaluated with some positions removed yields Equations
//! (4)–(7): the completion PMFs, chances and robustness under a
//! *provisional drop* — the quantity both the proactive dropping heuristic
//! and the optimal subset search maximise.
//!
//! Terminology from Figure 3 of the paper, for task at position `i`:
//! the **dependence zone** is positions `0..i` (they determine when `i` can
//! start) and the **influence zone** is positions `i+1..` (they are affected
//! if `i` is dropped).

use std::ops::Range;
use taskdrop_pmf::{deadline_convolve, ChainScratch, Compaction, Impulse, Pmf, Tick};

/// One pending task as seen by the chain: its deadline and its
/// execution-time PMF on this machine (a PET matrix cell).
#[derive(Debug, Clone, Copy)]
pub struct ChainTask<'a> {
    /// Hard deadline of the task.
    pub deadline: Tick,
    /// Execution-time PMF on the machine that queues the task.
    pub exec: &'a Pmf,
}

/// Completion PMF and chance of success of one pending position.
#[derive(Debug, Clone)]
pub struct ChainLink {
    /// Completion-time PMF of the position (after compaction).
    pub completion: Pmf,
    /// Chance of success (Eq 2), computed *before* compaction so the
    /// deadline boundary is exact.
    pub chance: f64,
}

/// Applies Equation (1) along the whole queue.
///
/// `base` is the completion-time PMF of whatever occupies the machine ahead
/// of the first pending task: the running task's (conditioned) completion
/// PMF, or a point mass at *now* for an idle machine.
///
/// Returns one [`ChainLink`] per task. Each link's `completion` is compacted
/// per `compaction` before feeding the next convolution (the paper's
/// histogram discretisation keeps impulse counts bounded the same way).
///
/// This is the allocation-per-step *reference* implementation; hot paths
/// use [`ChainEvaluator`], which is bit-identical and reuses its buffers.
#[must_use]
pub fn chain(base: &Pmf, tasks: &[ChainTask<'_>], compaction: Compaction) -> Vec<ChainLink> {
    let mut links = Vec::with_capacity(tasks.len());
    let mut prev = base.clone();
    for t in tasks {
        let raw = deadline_convolve(&prev, t.exec, t.deadline);
        let chance = raw.mass_before(t.deadline);
        let completion = compaction.apply(&raw);
        prev = completion.clone();
        links.push(ChainLink { completion, chance });
    }
    links
}

/// Sum of the chances of success of the first `take` tasks of the chain
/// (Eq 3 restricted to a prefix), without materialising the links.
///
/// This is the hot primitive of the proactive dropping heuristic: evaluating
/// Eq (8) needs only chance sums over the effective depth.
#[must_use]
pub fn chance_sum(base: &Pmf, tasks: &[ChainTask<'_>], take: usize, compaction: Compaction) -> f64 {
    let mut sum = 0.0;
    let mut prev = base.clone();
    for t in tasks.iter().take(take) {
        let raw = deadline_convolve(&prev, t.exec, t.deadline);
        sum += raw.mass_before(t.deadline);
        prev = compaction.apply(&raw);
    }
    sum
}

/// Applies the chain while skipping every position where `dropped[i]` is
/// true (Eqs 4–5 generalised to a subset). Returns `None` for dropped
/// positions, `Some(link)` for survivors.
///
/// # Panics
///
/// Panics if `dropped.len() != tasks.len()`.
#[must_use]
pub fn chain_with_drops(
    base: &Pmf,
    tasks: &[ChainTask<'_>],
    dropped: &[bool],
    compaction: Compaction,
) -> Vec<Option<ChainLink>> {
    assert_eq!(dropped.len(), tasks.len(), "drop mask must match task count");
    let mut links = Vec::with_capacity(tasks.len());
    let mut prev = base.clone();
    for (t, &is_dropped) in tasks.iter().zip(dropped) {
        if is_dropped {
            links.push(None);
            continue;
        }
        let raw = deadline_convolve(&prev, t.exec, t.deadline);
        let chance = raw.mass_before(t.deadline);
        let completion = compaction.apply(&raw);
        prev = completion.clone();
        links.push(Some(ChainLink { completion, chance }));
    }
    links
}

/// Zero-allocation fused evaluator serving [`chain`], [`chance_sum`],
/// [`chain_with_drops`] and queue-tail queries from one reusable set of
/// scratch buffers.
///
/// The free functions above are the *reference* implementations: one
/// [`Pmf`] materialisation per convolution plus a compaction clone per
/// step. The evaluator performs the same arithmetic through
/// [`ChainScratch`] — deadline products accumulated into a dense
/// tick-indexed buffer (no sort), the Eq (2) chance summed in the same
/// sweep, compaction rebinned straight into a ping-pong predecessor buffer
/// — so its outputs are **bit-identical** to the reference
/// (`crates/model/tests/evaluator_equivalence.rs` enforces this under all
/// three [`Compaction`] policies) while doing no steady-state allocation.
///
/// One evaluator is meant to be reused across many queues: buffers grow to
/// the scenario's working-set size and stay there. Methods taking `&mut
/// self` reset the chain state; the incremental API
/// ([`ChainEvaluator::begin`] / [`ChainEvaluator::step`]) is for callers
/// like the proactive dropper that interleave chain extension with
/// decisions.
#[derive(Debug, Default, Clone)]
pub struct ChainEvaluator {
    scratch: ChainScratch,
}

impl ChainEvaluator {
    /// A fresh evaluator with empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        ChainEvaluator::default()
    }

    /// Starts an incremental chain whose predecessor completion is `base`.
    pub fn begin(&mut self, base: &Pmf) {
        self.scratch.begin(base);
    }

    /// Advances the incremental chain by one task, returning its chance of
    /// success (Eq 2, evaluated on the raw pre-compaction completion).
    pub fn step(&mut self, task: ChainTask<'_>, compaction: Compaction) -> f64 {
        self.scratch.step(task.exec, task.deadline, compaction)
    }

    /// The current predecessor completion of the incremental chain.
    #[must_use]
    pub fn completion(&self) -> &[Impulse] {
        self.scratch.completion()
    }

    /// Materialises the current predecessor completion as a [`Pmf`].
    #[must_use]
    pub fn completion_pmf(&self) -> Pmf {
        self.scratch.completion_pmf()
    }

    /// One-shot step from an arbitrary predecessor `prev`, leaving any
    /// incremental chain state untouched. Returns `(chance, completion)`.
    pub fn step_from(
        &mut self,
        prev: &Pmf,
        task: ChainTask<'_>,
        compaction: Compaction,
    ) -> (f64, Pmf) {
        self.scratch.step_pmf(prev, task.exec, task.deadline, compaction)
    }

    /// Chance of success of `task` queued directly behind `prev`, without
    /// materialising the completion (Eq 1 + Eq 2 fused).
    pub fn chance_from(&mut self, prev: &Pmf, task: ChainTask<'_>) -> f64 {
        self.scratch.chance_of(prev, task.exec, task.deadline)
    }

    /// Fused equivalent of [`chain`].
    pub fn chain(
        &mut self,
        base: &Pmf,
        tasks: &[ChainTask<'_>],
        compaction: Compaction,
    ) -> Vec<ChainLink> {
        self.begin(base);
        let mut links = Vec::with_capacity(tasks.len());
        for &t in tasks {
            let chance = self.step(t, compaction);
            links.push(ChainLink { completion: self.completion_pmf(), chance });
        }
        links
    }

    /// Fused equivalent of [`chance_sum`].
    pub fn chance_sum(
        &mut self,
        base: &Pmf,
        tasks: &[ChainTask<'_>],
        take: usize,
        compaction: Compaction,
    ) -> f64 {
        self.begin(base);
        let mut sum = 0.0;
        for &t in tasks.iter().take(take) {
            sum += self.step(t, compaction);
        }
        sum
    }

    /// Fused equivalent of [`chain_with_drops`].
    ///
    /// # Panics
    ///
    /// Panics if `dropped.len() != tasks.len()`.
    pub fn chain_with_drops(
        &mut self,
        base: &Pmf,
        tasks: &[ChainTask<'_>],
        dropped: &[bool],
        compaction: Compaction,
    ) -> Vec<Option<ChainLink>> {
        assert_eq!(dropped.len(), tasks.len(), "drop mask must match task count");
        self.begin(base);
        let mut links = Vec::with_capacity(tasks.len());
        for (&t, &is_dropped) in tasks.iter().zip(dropped) {
            if is_dropped {
                links.push(None);
                continue;
            }
            let chance = self.step(t, compaction);
            links.push(Some(ChainLink { completion: self.completion_pmf(), chance }));
        }
        links
    }

    /// Completion PMF of the queue tail — where a task appended after
    /// `tasks` would wait. Equivalent to the last link of [`chain`] (or
    /// `base` itself for an empty queue) without materialising the
    /// intermediate links.
    pub fn tail(&mut self, base: &Pmf, tasks: &[ChainTask<'_>], compaction: Compaction) -> Pmf {
        self.begin(base);
        for &t in tasks {
            self.step(t, compaction);
        }
        self.completion_pmf()
    }
}

/// A lazily-extended baseline chain with prefix reuse — the shared
/// machinery of the proactive dropping policies (DESIGN.md §12).
///
/// Holds one [`ChainLink`] per evaluated position plus a watermark:
/// `links()[..valid_to]` reflect the current survivor set; slots at or past
/// the watermark are stale leftovers from before a drop and are always
/// rewritten by [`LazyChain::ensure`] before they can be read. A confirmed
/// drop calls [`LazyChain::rewind`], which re-chains at most the next
/// Eq (8) window on demand instead of the whole `O(q)` suffix.
#[derive(Debug, Default, Clone)]
pub struct LazyChain {
    eval: ChainEvaluator,
    links: Vec<ChainLink>,
    valid_to: usize,
}

impl LazyChain {
    /// A baseline chain whose predecessor completion starts at `base`.
    #[must_use]
    pub fn begin(base: &Pmf) -> Self {
        let mut chain = LazyChain::default();
        chain.eval.begin(base);
        chain
    }

    /// Restarts the chain in place from a new `base`, keeping the link and
    /// evaluator buffers warm — the persistent-context equivalent of
    /// [`LazyChain::begin`]. Every previously evaluated link falls behind
    /// the watermark and is rewritten before it can be read, so decisions
    /// after a reset are bit-identical to those of a fresh chain.
    pub fn reset(&mut self, base: &Pmf) {
        self.valid_to = 0;
        self.eval.begin(base);
    }

    /// Extends the baseline so positions `..upto` are evaluated against the
    /// current survivor set.
    ///
    /// # Panics
    ///
    /// Panics if `upto > tasks.len()`.
    pub fn ensure(&mut self, tasks: &[ChainTask<'_>], upto: usize, compaction: Compaction) {
        while self.valid_to < upto {
            let chance = self.eval.step(tasks[self.valid_to], compaction);
            let link = ChainLink { completion: self.eval.completion_pmf(), chance };
            if self.valid_to == self.links.len() {
                self.links.push(link);
            } else {
                self.links[self.valid_to] = link;
            }
            self.valid_to += 1;
        }
    }

    /// The evaluated links. Only `..valid_to` — everything a preceding
    /// [`LazyChain::ensure`] covered — is meaningful; later slots are stale.
    #[must_use]
    pub fn links(&self) -> &[ChainLink] {
        &self.links
    }

    /// Replaces the link at `i` (which must already be evaluated), e.g.
    /// with a degraded-head link.
    pub fn replace(&mut self, i: usize, link: ChainLink) {
        assert!(i < self.valid_to, "cannot replace a link past the watermark");
        self.links[i] = link;
    }

    /// Invalidates positions `to..` and restarts the chain from the
    /// predecessor completion `from` — the prefix-reuse rewind after a
    /// confirmed drop (or degrade) at position `to - 1`.
    pub fn rewind(&mut self, from: &Pmf, to: usize) {
        assert!(to <= self.valid_to, "rewind cannot move the watermark forward");
        self.valid_to = to;
        self.eval.begin(from);
    }
}

/// Instantaneous robustness (Eq 3 / Eq 7): the sum of chances of success of
/// the surviving positions.
#[must_use]
pub fn instantaneous_robustness(links: &[Option<ChainLink>]) -> f64 {
    links.iter().flatten().map(|l| l.chance).sum()
}

/// The influence zone of position `i` in a queue of length `len`
/// (Figure 3): the positions behind `i`, which benefit if `i` is dropped.
#[must_use]
pub fn influence_zone(i: usize, len: usize) -> Range<usize> {
    (i + 1).min(len)..len
}

/// The dependence zone of position `i` (Figure 3): the positions ahead of
/// `i`, which determine when `i` can start.
#[must_use]
pub fn dependence_zone(i: usize) -> Range<usize> {
    0..i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn single_task_chain_matches_direct_convolution() {
        let base = Pmf::point(10);
        let exec = Pmf::from_impulses(vec![(5, 0.5), (10, 0.5)]).unwrap();
        let links = chain(&base, &[ChainTask { deadline: 18, exec: &exec }], Compaction::None);
        assert_eq!(links.len(), 1);
        // Completion: 15 w.p. 0.5 (on time), 20 w.p. 0.5 (late).
        assert!(close(links[0].chance, 0.5));
        assert!(close(links[0].completion.at(15), 0.5));
        assert!(close(links[0].completion.at(20), 0.5));
    }

    #[test]
    fn chain_propagates_completion() {
        let base = Pmf::point(0);
        let exec = Pmf::point(10);
        let tasks = [
            ChainTask { deadline: 100, exec: &exec },
            ChainTask { deadline: 100, exec: &exec },
            ChainTask { deadline: 25, exec: &exec },
        ];
        let links = chain(&base, &tasks, Compaction::None);
        assert_eq!(links[0].completion.to_pairs(), vec![(10, 1.0)]);
        assert_eq!(links[1].completion.to_pairs(), vec![(20, 1.0)]);
        // Third task starts at 20 < 25, completes at 30 >= 25: ran but late.
        assert_eq!(links[2].completion.to_pairs(), vec![(30, 1.0)]);
        assert!(close(links[2].chance, 0.0));
    }

    #[test]
    fn expired_task_passes_mass_through() {
        let base = Pmf::point(50);
        let exec = Pmf::point(10);
        // Deadline 30 is before the machine frees at 50: reactive-drop branch.
        let tasks =
            [ChainTask { deadline: 30, exec: &exec }, ChainTask { deadline: 100, exec: &exec }];
        let links = chain(&base, &tasks, Compaction::None);
        assert!(close(links[0].chance, 0.0));
        assert_eq!(links[0].completion.to_pairs(), vec![(50, 1.0)]);
        // The follower starts right at 50, as if the expired task were absent.
        assert_eq!(links[1].completion.to_pairs(), vec![(60, 1.0)]);
        assert!(close(links[1].chance, 1.0));
    }

    #[test]
    fn chance_sum_matches_chain() {
        let base = Pmf::point(0);
        let e1 = Pmf::from_impulses(vec![(8, 0.5), (16, 0.5)]).unwrap();
        let e2 = Pmf::from_impulses(vec![(4, 0.25), (6, 0.75)]).unwrap();
        let tasks = [
            ChainTask { deadline: 12, exec: &e1 },
            ChainTask { deadline: 20, exec: &e2 },
            ChainTask { deadline: 24, exec: &e1 },
        ];
        let links = chain(&base, &tasks, Compaction::None);
        let total: f64 = links.iter().map(|l| l.chance).sum();
        assert!(close(chance_sum(&base, &tasks, 3, Compaction::None), total));
        let prefix: f64 = links.iter().take(2).map(|l| l.chance).sum();
        assert!(close(chance_sum(&base, &tasks, 2, Compaction::None), prefix));
        assert!(close(chance_sum(&base, &tasks, 0, Compaction::None), 0.0));
    }

    #[test]
    fn chain_with_no_drops_equals_chain() {
        let base = Pmf::point(0);
        let exec = Pmf::from_impulses(vec![(3, 0.5), (9, 0.5)]).unwrap();
        let tasks =
            [ChainTask { deadline: 10, exec: &exec }, ChainTask { deadline: 15, exec: &exec }];
        let plain = chain(&base, &tasks, Compaction::None);
        let masked = chain_with_drops(&base, &tasks, &[false, false], Compaction::None);
        for (a, b) in plain.iter().zip(masked.iter()) {
            let b = b.as_ref().unwrap();
            assert_eq!(a.completion, b.completion);
            assert!(close(a.chance, b.chance));
        }
    }

    #[test]
    fn dropping_head_improves_follower() {
        let base = Pmf::point(0);
        let big = Pmf::point(50);
        let small = Pmf::point(5);
        let tasks =
            [ChainTask { deadline: 60, exec: &big }, ChainTask { deadline: 20, exec: &small }];
        let keep = chain(&base, &tasks, Compaction::None);
        // Follower starts at 50, finishes 55 >= 20: chance 0.
        assert!(close(keep[1].chance, 0.0));
        let drop = chain_with_drops(&base, &tasks, &[true, false], Compaction::None);
        // With the big task dropped the follower finishes at 5 < 20.
        assert!(close(drop[1].as_ref().unwrap().chance, 1.0));
    }

    #[test]
    fn robustness_sums_surviving_chances() {
        let links = vec![
            Some(ChainLink { completion: Pmf::point(1), chance: 0.5 }),
            None,
            Some(ChainLink { completion: Pmf::point(2), chance: 0.25 }),
        ];
        assert!(close(instantaneous_robustness(&links), 0.75));
    }

    #[test]
    fn zones_match_figure3() {
        assert_eq!(influence_zone(2, 6), 3..6);
        assert_eq!(influence_zone(5, 6), 6..6); // last task: empty influence
        assert_eq!(dependence_zone(2), 0..2);
        assert_eq!(dependence_zone(0), 0..0);
    }

    #[test]
    fn empty_base_yields_zero_chances() {
        let exec = Pmf::point(1);
        let links =
            chain(&Pmf::empty(), &[ChainTask { deadline: 10, exec: &exec }], Compaction::None);
        assert!(close(links[0].chance, 0.0));
        assert!(links[0].completion.is_empty());
    }

    #[test]
    fn compaction_bounds_link_sizes() {
        let base = Pmf::uniform(0, 200);
        let exec = Pmf::uniform(10, 120);
        let tasks: Vec<ChainTask<'_>> =
            (0..6).map(|k| ChainTask { deadline: 300 + 100 * k, exec: &exec }).collect();
        let links = chain(&base, &tasks, Compaction::MaxImpulses(32));
        for l in &links {
            assert!(l.completion.len() <= 32);
        }
    }

    /// Compaction introduces only a small chance-of-success error relative
    /// to the exact chain on a realistic-size queue.
    #[test]
    fn compaction_error_is_small() {
        let base = Pmf::uniform(0, 100);
        let exec = Pmf::uniform(50, 150);
        let tasks: Vec<ChainTask<'_>> =
            (0..5).map(|k| ChainTask { deadline: 250 + 150 * k, exec: &exec }).collect();
        let exact = chain(&base, &tasks, Compaction::None);
        let compact = chain(&base, &tasks, Compaction::MaxImpulses(64));
        for (e, c) in exact.iter().zip(compact.iter()) {
            assert!((e.chance - c.chance).abs() < 0.02, "{} vs {}", e.chance, c.chance);
        }
    }
}
