//! Tasks and task types.

use crate::{TaskId, TaskTypeId};
use serde::{Deserialize, Serialize};
use taskdrop_pmf::Tick;

/// A *task type* — a category of work with a characteristic execution-time
/// distribution per machine type (e.g. one SPECint benchmark, or one video
/// transcoding operation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskType {
    /// Identifier; also the row index in the PET matrix.
    pub id: TaskTypeId,
    /// Human-readable name (e.g. `"mcf"`, `"change-resolution"`).
    pub name: String,
    /// Mean execution time across machine types, in ticks. Used for the
    /// deadline formula of the paper: `δ_i = arr_i + avg_i + γ·avg_all`.
    pub mean_exec: f64,
}

/// One task instance flowing through the system.
///
/// Tasks are independent and sequential, with an individual **hard
/// deadline**: completing at or after `deadline` has no value (the paper's
/// live video-streaming motivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Unique identifier (also encodes arrival order).
    pub id: TaskId,
    /// The task's type (PET matrix row).
    pub type_id: TaskTypeId,
    /// Arrival tick.
    pub arrival: Tick,
    /// Hard deadline tick; the task must complete *strictly before* this.
    pub deadline: Tick,
}

impl Task {
    /// Creates a task, checking that the deadline is after the arrival.
    ///
    /// # Panics
    ///
    /// Panics if `deadline <= arrival` (every task must be individually
    /// feasible, per the paper's workload construction).
    #[must_use]
    pub fn new(id: TaskId, type_id: TaskTypeId, arrival: Tick, deadline: Tick) -> Self {
        assert!(deadline > arrival, "task {id}: deadline {deadline} <= arrival {arrival}");
        Task { id, type_id, arrival, deadline }
    }

    /// Slack between arrival and deadline.
    #[must_use]
    pub fn slack(&self) -> Tick {
        self.deadline - self.arrival
    }

    /// Whether the task can no longer *begin* execution before its deadline
    /// at time `now` — the reactive-drop rule of the paper's Equation (1)
    /// (`k ≥ δᵢ` branch). The engine drops expired tasks at every mapping
    /// event and whenever one reaches the head of a machine queue.
    #[must_use]
    pub fn expired(&self, now: Tick) -> bool {
        now >= self.deadline
    }

    /// Whether the task cannot complete strictly before its deadline even
    /// with a minimal (1-tick) execution. One tick sharper than
    /// [`Task::expired`]: a task started at `deadline - 1` is allowed to run
    /// under Eq (1) but is already hopeless.
    #[must_use]
    pub fn hopeless(&self, now: Tick) -> bool {
        now + 1 >= self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(arrival: Tick, deadline: Tick) -> Task {
        Task::new(TaskId(1), TaskTypeId(0), arrival, deadline)
    }

    #[test]
    fn slack_is_deadline_minus_arrival() {
        assert_eq!(t(10, 25).slack(), 15);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn rejects_deadline_at_arrival() {
        let _ = t(10, 10);
    }

    #[test]
    fn expiry_follows_eq1_start_rule() {
        let task = t(0, 10);
        // Eq (1): a task may start at any k < deadline.
        assert!(!task.expired(8));
        assert!(!task.expired(9));
        assert!(task.expired(10));
        assert!(task.expired(11));
    }

    #[test]
    fn hopeless_is_one_tick_sharper() {
        let task = t(0, 10);
        // At now=8 a 1-tick execution completes at 9 < 10: still feasible.
        assert!(!task.hopeless(8));
        // At now=9 the best case completes at 10, which is not < 10.
        assert!(task.hopeless(9));
        assert!(!task.expired(9), "expired still allows the doomed 1-tick start");
    }
}
