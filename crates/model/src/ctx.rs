//! The persistent per-engine evaluation context: policy scratch buffers
//! plus the keyed PET×tail convolution cache (DESIGN.md §13).
//!
//! Every scheduling decision — drop policies, mapping tails, admission
//! estimates — prices queue futures through the Eq (1)/(2) chain. PR 4's
//! fused [`ChainEvaluator`] removed the per-*step* allocations, but each
//! policy invocation still constructed fresh evaluators, and the
//! PET×tail convolutions behind every queue-tail estimate were recomputed
//! even when a machine's queue had not changed between mapping events —
//! the redundancy probabilistic-pruning systems exploit with PMF caching.
//!
//! [`PolicyCtx`] fixes both. It is constructed **once per engine** (one
//! `SimCore` owns one), threaded as `&mut` through
//! `DropPolicy::select_drops` and `MappingHeuristic::map`, and reused
//! across steps, checkpoints and serving epochs. It owns
//!
//! * the shared scratch evaluators every policy draws from (buffers warm
//!   up once per trial instead of once per call), and
//! * a [`TailCache`]: per-machine queue-tail completion PMFs keyed by
//!   `(queue revision, base PMF, compaction)` and per-(machine, task-type)
//!   plain `tail ⊛ exec` convolutions keyed by `(tail, exec)`, with
//!   deterministic hit/miss counters.
//!
//! # Correctness contract
//!
//! The cache key is the *complete* input of the cached function, so a hit
//! returns a value **bit-identical** to recomputation — pinned by the
//! differential suites in `crates/model/tests/evaluator_equivalence.rs`
//! and `tests/tail_cache.rs`. Cached state is *derived* state: it never
//! enters a checkpoint, and a restored engine starts cold and converges to
//! the same bytes (asserted in `tests/checkpoint_determinism.rs`).

use crate::queue::{ChainEvaluator, LazyChain};
use taskdrop_pmf::{Compaction, Pmf};

/// Monotone cache hit/miss counters, deterministic for a given trial
/// (surfaced through `StepOutcome` work counters and `BENCH_core.json`;
/// CI fails on any drift at the fixed bench seed).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queue-tail lookups answered from the cache.
    pub tail_hits: u64,
    /// Queue-tail lookups that had to re-chain the queue.
    pub tail_misses: u64,
    /// PET×tail convolution lookups answered from the cache.
    pub conv_hits: u64,
    /// PET×tail convolution lookups that had to convolve.
    pub conv_misses: u64,
}

impl CacheStats {
    /// Total lookups across both caches.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.tail_hits + self.tail_misses + self.conv_hits + self.conv_misses
    }
}

/// Human-readable hit-rate summary, e.g.
/// `tail 1860/3947 hits (47.1%), conv 902/1200 hits (75.2%)`.
/// Zero-lookup caches render as `(-)` rather than dividing by zero.
impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn part(
            f: &mut std::fmt::Formatter<'_>,
            name: &str,
            hits: u64,
            misses: u64,
        ) -> std::fmt::Result {
            let total = hits + misses;
            write!(f, "{name} {hits}/{total} hits ")?;
            if total == 0 {
                write!(f, "(-)")
            } else {
                write!(f, "({:.1}%)", 100.0 * hits as f64 / total as f64)
            }
        }
        part(f, "tail", self.tail_hits, self.tail_misses)?;
        write!(f, ", ")?;
        part(f, "conv", self.conv_hits, self.conv_misses)
    }
}

/// One machine's cached queue tail: the exact inputs it was computed from
/// plus the result. A lookup hits only when every key field matches, so
/// queue mutation (revision bump), a different predecessor completion
/// (clock advanced past a support point, failure/repair changed the
/// running task) or a compaction-policy change each invalidate it.
#[derive(Debug, Clone)]
struct TailEntry {
    rev: u64,
    compaction: Compaction,
    base: Pmf,
    tail: Pmf,
}

/// One cached plain convolution `tail ⊛ exec` for a (machine, task type)
/// slot. Both inputs are stored and compared on lookup: the tail changes
/// whenever the machine's queue does, and comparing the exec PMF keeps a
/// context safe even if it is (incorrectly but harmlessly) reused across
/// scenarios with different PET matrices.
#[derive(Debug, Clone)]
struct ConvEntry {
    tail: Pmf,
    exec: Pmf,
    conv: Pmf,
}

/// Keyed PET×tail cache: per-machine queue tails and per-(machine,
/// task-type) `tail ⊛ exec` convolutions, with hit/miss accounting.
///
/// Keys are the complete inputs of the cached computation (`TailEntry`/
/// `ConvEntry` above), so stale entries can never be served — they
/// simply fail the comparison and are overwritten. `clear` exists for
/// callers that want to drop memory, not for correctness.
#[derive(Debug, Default, Clone)]
pub struct TailCache {
    tails: Vec<Option<TailEntry>>,
    convs: Vec<Option<ConvEntry>>,
    conv_types: usize,
    stats: CacheStats,
}

impl TailCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        TailCache::default()
    }

    /// The hit/miss counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every cached entry (counters are kept — they are monotone
    /// work accounting, not cache contents).
    pub fn clear(&mut self) {
        self.tails.clear();
        self.convs.clear();
        self.conv_types = 0;
    }

    /// Looks up `machine`'s cached queue tail. Hits (and returns a clone)
    /// only when the queue revision, predecessor completion and compaction
    /// policy all match the entry's key; every call bumps exactly one
    /// counter.
    pub fn lookup_tail(
        &mut self,
        machine: usize,
        rev: u64,
        base: &Pmf,
        compaction: Compaction,
    ) -> Option<Pmf> {
        let entry = self.tails.get(machine).and_then(Option::as_ref);
        match entry {
            Some(e) if e.rev == rev && e.compaction == compaction && e.base == *base => {
                self.stats.tail_hits += 1;
                Some(e.tail.clone())
            }
            _ => {
                self.stats.tail_misses += 1;
                None
            }
        }
    }

    /// Stores `machine`'s queue tail under its complete key, replacing any
    /// previous entry.
    pub fn store_tail(
        &mut self,
        machine: usize,
        rev: u64,
        base: Pmf,
        compaction: Compaction,
        tail: Pmf,
    ) {
        if self.tails.len() <= machine {
            self.tails.resize_with(machine + 1, || None);
        }
        self.tails[machine] = Some(TailEntry { rev, compaction, base, tail });
    }

    /// The plain convolution `tail ⊛ exec` for the `(machine, task_type)`
    /// slot, served from the cache when both stored inputs match and
    /// computed via `convolve` (then cached) otherwise. `types` is the
    /// PET's task-type count (the slot stride); a context that sees a
    /// different stride drops the table rather than alias slots.
    pub fn conv(
        &mut self,
        machine: usize,
        task_type: usize,
        types: usize,
        tail: &Pmf,
        exec: &Pmf,
    ) -> &Pmf {
        if self.conv_types != types {
            self.convs.clear();
            self.conv_types = types;
        }
        let slot = machine * types + task_type;
        if self.convs.len() <= slot {
            self.convs.resize_with(slot + 1, || None);
        }
        let hit = self.convs[slot].as_ref().is_some_and(|e| e.tail == *tail && e.exec == *exec);
        if hit {
            self.stats.conv_hits += 1;
        } else {
            self.stats.conv_misses += 1;
            let conv = tail.convolve(exec);
            self.convs[slot] = Some(ConvEntry { tail: tail.clone(), exec: exec.clone(), conv });
        }
        &self.convs[slot].as_ref().expect("entry filled above").conv
    }
}

/// Long-lived evaluation context threaded through every policy call: the
/// scratch buffers the policies previously constructed per invocation,
/// plus the [`TailCache`]. One per engine; see the module docs for the
/// ownership and invalidation rules.
///
/// The scratch fields are public by design: a policy typically needs two
/// of them simultaneously (split borrows), and every method that uses
/// them re-`begin`s or resets before reading, so stale contents from a
/// previous call can never leak into a decision — the differential suite
/// pins persistent-context decisions bit-identical to fresh-context ones.
#[derive(Debug, Default, Clone)]
pub struct PolicyCtx {
    /// General-purpose fused evaluator (threshold pass, optimal DFS,
    /// queue-tail chains, ordered mappers).
    pub eval: ChainEvaluator,
    /// Probe evaluator pricing the Eq (8) drop-future windows.
    pub probe: ChainEvaluator,
    /// Lazily-extended baseline chain of the Eq (8) droppers.
    pub baseline: LazyChain,
    /// The keyed PET×tail cache.
    pub tails: TailCache,
}

impl PolicyCtx {
    /// A fresh context with empty scratch and a cold cache.
    #[must_use]
    pub fn new() -> Self {
        PolicyCtx::default()
    }

    /// The cache hit/miss counters so far.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.tails.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_lookup_hits_only_on_full_key_match() {
        let mut cache = TailCache::new();
        let base = Pmf::point(10);
        let tail = Pmf::point(30);
        assert!(cache.lookup_tail(2, 1, &base, Compaction::None).is_none());
        cache.store_tail(2, 1, base.clone(), Compaction::None, tail.clone());
        assert_eq!(cache.lookup_tail(2, 1, &base, Compaction::None), Some(tail.clone()));
        // Revision, base or compaction drift each miss.
        assert!(cache.lookup_tail(2, 2, &base, Compaction::None).is_none());
        assert!(cache.lookup_tail(2, 1, &Pmf::point(11), Compaction::None).is_none());
        assert!(cache.lookup_tail(2, 1, &base, Compaction::BinWidth(4)).is_none());
        // Unknown machine misses without panicking.
        assert!(cache.lookup_tail(9, 1, &base, Compaction::None).is_none());
        let stats = cache.stats();
        assert_eq!((stats.tail_hits, stats.tail_misses), (1, 5));
    }

    #[test]
    fn conv_is_cached_per_inputs_and_bit_identical() {
        let mut cache = TailCache::new();
        let tail = Pmf::from_impulses(vec![(10, 0.5), (20, 0.5)]).unwrap();
        let exec = Pmf::from_impulses(vec![(5, 0.25), (9, 0.75)]).unwrap();
        let fresh = tail.convolve(&exec);
        let first = cache.conv(1, 0, 3, &tail, &exec).clone();
        let again = cache.conv(1, 0, 3, &tail, &exec).clone();
        assert_eq!(first, fresh);
        assert_eq!(again, fresh);
        let stats = cache.stats();
        assert_eq!((stats.conv_hits, stats.conv_misses), (1, 1));
        // A different tail in the same slot recomputes.
        let moved = Pmf::point(40);
        let recomputed = cache.conv(1, 0, 3, &moved, &exec).clone();
        assert_eq!(recomputed, moved.convolve(&exec));
        assert_eq!(cache.stats().conv_misses, 2);
    }

    #[test]
    fn conv_stride_change_drops_the_table() {
        let mut cache = TailCache::new();
        let tail = Pmf::point(10);
        let exec = Pmf::point(5);
        let _ = cache.conv(0, 1, 4, &tail, &exec);
        // Same (machine, type) under a different stride must not alias.
        let _ = cache.conv(0, 1, 2, &tail, &exec);
        assert_eq!(cache.stats().conv_misses, 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let mut cache = TailCache::new();
        let base = Pmf::point(1);
        cache.store_tail(0, 0, base.clone(), Compaction::None, Pmf::point(2));
        assert!(cache.lookup_tail(0, 0, &base, Compaction::None).is_some());
        cache.clear();
        assert!(cache.lookup_tail(0, 0, &base, Compaction::None).is_none());
        let stats = cache.stats();
        assert_eq!((stats.tail_hits, stats.tail_misses), (1, 1));
        assert_eq!(stats.lookups(), 2);
    }

    #[test]
    fn cache_stats_display_is_zero_safe() {
        let stats =
            CacheStats { tail_hits: 1_860, tail_misses: 2_087, conv_hits: 3, conv_misses: 1 };
        assert_eq!(stats.to_string(), "tail 1860/3947 hits (47.1%), conv 3/4 hits (75.0%)");
        assert_eq!(CacheStats::default().to_string(), "tail 0/0 hits (-), conv 0/0 hits (-)");
    }
}
