//! The PET (Probabilistic Execution Time) matrix.
//!
//! A `T × M` matrix of execution-time PMFs: entry `(i, j)` is the PMF of the
//! execution time of task type `i` on machine type `j`, learned from
//! historic executions (the paper samples 500 Gamma variates per cell and
//! discretises them with a histogram). The matrix is immutable during a
//! simulation and shared by the mapper, the dropper and the engine, so it
//! also caches each cell's mean and the per-type / overall means used by the
//! deadline formula.

use crate::{MachineTypeId, TaskTypeId};
use serde::{Deserialize, Serialize};
use taskdrop_pmf::Pmf;

/// Probabilistic Execution Time matrix (task types × machine types).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PetMatrix {
    task_types: usize,
    machine_types: usize,
    /// Row-major: `cells[i * machine_types + j]`.
    cells: Vec<Pmf>,
    /// Cached cell means, same layout.
    means: Vec<f64>,
    /// Cached per-task-type mean across machine types (`avg_i`).
    type_means: Vec<f64>,
    /// Cached mean over all task types (`avg_all`).
    overall_mean: f64,
}

impl PetMatrix {
    /// Builds a PET matrix from row-major cells (`task_types` rows of
    /// `machine_types` PMFs each).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not equal `task_types * machine_types`,
    /// if either dimension is zero, or if any cell is empty or not
    /// normalised (every execution-time distribution must be proper).
    #[must_use]
    pub fn new(task_types: usize, machine_types: usize, cells: Vec<Pmf>) -> Self {
        assert!(task_types > 0 && machine_types > 0, "PET matrix must be non-empty");
        assert_eq!(
            cells.len(),
            task_types * machine_types,
            "PET matrix needs task_types * machine_types cells"
        );
        for (idx, cell) in cells.iter().enumerate() {
            assert!(
                cell.is_normalized(),
                "PET cell {} (type {}, machine type {}) is not a proper distribution",
                idx,
                idx / machine_types,
                idx % machine_types
            );
        }
        let means: Vec<f64> =
            cells.iter().map(|c| c.mean().expect("normalised cells are non-empty")).collect();
        let type_means: Vec<f64> = (0..task_types)
            .map(|i| {
                let row = &means[i * machine_types..(i + 1) * machine_types];
                row.iter().sum::<f64>() / machine_types as f64
            })
            .collect();
        let overall_mean = type_means.iter().sum::<f64>() / task_types as f64;
        PetMatrix { task_types, machine_types, cells, means, type_means, overall_mean }
    }

    /// Number of task types (rows).
    #[must_use]
    pub fn task_types(&self) -> usize {
        self.task_types
    }

    /// Number of machine types (columns).
    #[must_use]
    pub fn machine_types(&self) -> usize {
        self.machine_types
    }

    #[inline]
    fn idx(&self, t: TaskTypeId, m: MachineTypeId) -> usize {
        debug_assert!(t.index() < self.task_types, "task type {t} out of range");
        debug_assert!(m.index() < self.machine_types, "machine type {m} out of range");
        t.index() * self.machine_types + m.index()
    }

    /// Execution-time PMF of task type `t` on machine type `m`.
    #[must_use]
    pub fn pmf(&self, t: TaskTypeId, m: MachineTypeId) -> &Pmf {
        &self.cells[self.idx(t, m)]
    }

    /// Cached mean execution time of task type `t` on machine type `m`.
    #[must_use]
    pub fn mean_exec(&self, t: TaskTypeId, m: MachineTypeId) -> f64 {
        self.means[self.idx(t, m)]
    }

    /// `avg_i`: mean execution time of task type `t` across machine types
    /// (used by the paper's deadline formula).
    #[must_use]
    pub fn type_mean(&self, t: TaskTypeId) -> f64 {
        self.type_means[t.index()]
    }

    /// `avg_all`: mean execution time over all task types.
    #[must_use]
    pub fn overall_mean(&self) -> f64 {
        self.overall_mean
    }

    /// Measures *inconsistency* of the heterogeneity: the fraction of task
    ///-type pairs whose machine-preference order differs between at least
    /// one pair of machines. 0 for a consistent system (every machine is
    /// uniformly faster/slower), approaching 1 for highly inconsistent ones.
    #[must_use]
    pub fn inconsistency(&self) -> f64 {
        if self.machine_types < 2 || self.task_types < 2 {
            return 0.0;
        }
        let mut inverted = 0usize;
        let mut total = 0usize;
        for a in 0..self.task_types {
            for b in (a + 1)..self.task_types {
                for ma in 0..self.machine_types {
                    for mb in (ma + 1)..self.machine_types {
                        let va = self.means[a * self.machine_types + ma]
                            - self.means[a * self.machine_types + mb];
                        let vb = self.means[b * self.machine_types + ma]
                            - self.means[b * self.machine_types + mb];
                        total += 1;
                        if va * vb < 0.0 {
                            inverted += 1;
                        }
                    }
                }
            }
        }
        inverted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pet_2x2(m00: u64, m01: u64, m10: u64, m11: u64) -> PetMatrix {
        PetMatrix::new(
            2,
            2,
            vec![Pmf::point(m00), Pmf::point(m01), Pmf::point(m10), Pmf::point(m11)],
        )
    }

    #[test]
    fn means_cached_correctly() {
        let pet = pet_2x2(10, 20, 30, 40);
        assert_eq!(pet.mean_exec(TaskTypeId(0), MachineTypeId(0)), 10.0);
        assert_eq!(pet.mean_exec(TaskTypeId(1), MachineTypeId(1)), 40.0);
        assert_eq!(pet.type_mean(TaskTypeId(0)), 15.0);
        assert_eq!(pet.type_mean(TaskTypeId(1)), 35.0);
        assert_eq!(pet.overall_mean(), 25.0);
    }

    #[test]
    fn pmf_lookup_row_major() {
        let pet = pet_2x2(1, 2, 3, 4);
        assert_eq!(pet.pmf(TaskTypeId(1), MachineTypeId(0)).support_min(), Some(3));
    }

    #[test]
    fn consistent_matrix_has_zero_inconsistency() {
        // Machine 1 is uniformly 2x slower.
        let pet = pet_2x2(10, 20, 30, 60);
        assert_eq!(pet.inconsistency(), 0.0);
    }

    #[test]
    fn inverted_matrix_has_positive_inconsistency() {
        // Machine 0 faster for type 0, machine 1 faster for type 1.
        let pet = pet_2x2(10, 20, 20, 10);
        assert!(pet.inconsistency() > 0.99);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn rejects_wrong_cell_count() {
        let _ = PetMatrix::new(2, 2, vec![Pmf::point(1)]);
    }

    #[test]
    #[should_panic(expected = "proper distribution")]
    fn rejects_subnormalized_cell() {
        let _ = PetMatrix::new(1, 1, vec![Pmf::point(1).scale_mass(0.5)]);
    }
}
