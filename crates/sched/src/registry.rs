//! Name-based construction of mapping heuristics, for configs and CLIs.

use crate::{Edf, Fcfs, MappingHeuristic, MaxMin, MinMin, Msd, Pam, Sjf, Sufferage};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Enumerates the built-in mapping heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// MinCompletion–MinCompletion.
    MinMin,
    /// MinCompletion–MaxCompletion (extension; not in the paper).
    MaxMin,
    /// MinCompletion–Soonest-Deadline.
    Msd,
    /// Pruning-Aware Mapping (deferring disabled).
    Pam,
    /// Sufferage (extension; not in the paper).
    Sufferage,
    /// First come, first serve.
    Fcfs,
    /// Earliest deadline first.
    Edf,
    /// Shortest job first.
    Sjf,
}

impl HeuristicKind {
    /// All built-in heuristics: the paper's six first, then the extensions.
    pub const ALL: [HeuristicKind; 8] = [
        HeuristicKind::Msd,
        HeuristicKind::MinMin,
        HeuristicKind::Pam,
        HeuristicKind::Fcfs,
        HeuristicKind::Edf,
        HeuristicKind::Sjf,
        HeuristicKind::MaxMin,
        HeuristicKind::Sufferage,
    ];

    /// Instantiates the heuristic.
    #[must_use]
    pub fn build(self) -> Box<dyn MappingHeuristic> {
        match self {
            HeuristicKind::MinMin => Box::new(MinMin),
            HeuristicKind::MaxMin => Box::new(MaxMin),
            HeuristicKind::Msd => Box::new(Msd),
            HeuristicKind::Pam => Box::new(Pam),
            HeuristicKind::Sufferage => Box::new(Sufferage),
            HeuristicKind::Fcfs => Box::new(Fcfs),
            HeuristicKind::Edf => Box::new(Edf),
            HeuristicKind::Sjf => Box::new(Sjf),
        }
    }

    /// The stable display name (matches `MappingHeuristic::name`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HeuristicKind::MinMin => "MM",
            HeuristicKind::MaxMin => "MaxMin",
            HeuristicKind::Msd => "MSD",
            HeuristicKind::Pam => "PAM",
            HeuristicKind::Sufferage => "Sufferage",
            HeuristicKind::Fcfs => "FCFS",
            HeuristicKind::Edf => "EDF",
            HeuristicKind::Sjf => "SJF",
        }
    }
}

impl fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for HeuristicKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "MM" | "MINMIN" => Ok(HeuristicKind::MinMin),
            "MAXMIN" => Ok(HeuristicKind::MaxMin),
            "MSD" => Ok(HeuristicKind::Msd),
            "PAM" => Ok(HeuristicKind::Pam),
            "SUFFERAGE" => Ok(HeuristicKind::Sufferage),
            "FCFS" => Ok(HeuristicKind::Fcfs),
            "EDF" => Ok(HeuristicKind::Edf),
            "SJF" => Ok(HeuristicKind::Sjf),
            other => Err(format!("unknown mapping heuristic: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_name_parse() {
        for kind in HeuristicKind::ALL {
            let parsed: HeuristicKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("minmin".parse::<HeuristicKind>().unwrap(), HeuristicKind::MinMin);
        assert_eq!("pam".parse::<HeuristicKind>().unwrap(), HeuristicKind::Pam);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("nope".parse::<HeuristicKind>().is_err());
    }
}
