//! The two-phase batch mappers: MinMin, MSD and PAM.
//!
//! All three share the same skeleton (repeat until no free slot or no
//! unmapped task):
//!
//! 1. **Phase 1** — every unmapped task is provisionally paired with its
//!    best machine among those with a free slot (MinMin/MSD: minimum
//!    expected completion time; PAM: highest chance of success).
//! 2. **Phase 2** — every machine with a free slot receives, among the pairs
//!    provisionally mapped to it, the winning pair (MinMin: minimum
//!    completion; MSD: soonest deadline; PAM: minimum completion, ties by
//!    shortest expected execution).
//!
//! Losing pairs re-enter phase 1 in the next iteration against the updated
//! queue tails, exactly as the paper describes for MM/MSD. (The paper's PAM
//! prose picks one global pair per iteration; we use the same per-machine
//! phase 2 as MM — with the one-or-two free slots typical of a mapping event
//! the two formulations coincide, and this one is uniform and faster.)
//!
//! Expected completion time of a task appended to a queue is
//! `E[tail] + E[exec]`, the standard scalar approximation used by these
//! heuristics. Chance of success is exact: `P(tail ⊛ exec < deadline)`,
//! which equals the deadline-aware convolution's on-time mass because mass
//! below the deadline can only come from on-time starts.

use crate::MappingHeuristic;
use taskdrop_model::ctx::{PolicyCtx, TailCache};
use taskdrop_model::queue::{ChainEvaluator, ChainTask};
use taskdrop_model::view::{Assignment, MachineView, MappingInput, UnmappedView};
use taskdrop_model::PetMatrix;
use taskdrop_pmf::Compaction;

/// Which two-phase heuristic to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    MinMin,
    MaxMin,
    Msd,
    Pam,
    Sufferage,
}

/// MinCompletion–MinCompletion (MinMin / MM), the classic heterogeneous
/// batch mapper.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMin;

/// MinCompletion–MaxCompletion (MaxMin): pairs tasks with their fastest
/// machine like MinMin, but serves the pair with the *largest* completion
/// time first, preventing long tasks from starving behind swarms of short
/// ones. Classic counterpart of MinMin in the heterogeneous-scheduling
/// literature (Ibarra & Kim lineage); not evaluated in the paper but
/// included for library completeness and the extension benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMin;

/// MinCompletion–Soonest-Deadline (MSD).
#[derive(Debug, Clone, Copy, Default)]
pub struct Msd;

/// Pruning-Aware Mapping (PAM) with deferring disabled, as evaluated in the
/// paper. Uses the PET matrix to maximise each task's chance of success.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pam;

/// Sufferage: each task is paired with its fastest machine, but the slot
/// goes to the task that would *suffer* most if denied it — the largest gap
/// between its best and second-best expected completion times. A standard
/// strong baseline on inconsistent heterogeneity; included as an extension.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sufferage;

impl MappingHeuristic for MinMin {
    fn name(&self) -> &'static str {
        "MM"
    }
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        run_two_phase(input, Kind::MinMin, scratch)
    }
}

impl MappingHeuristic for MaxMin {
    fn name(&self) -> &'static str {
        "MaxMin"
    }
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        run_two_phase(input, Kind::MaxMin, scratch)
    }
}

impl MappingHeuristic for Msd {
    fn name(&self) -> &'static str {
        "MSD"
    }
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        run_two_phase(input, Kind::Msd, scratch)
    }
}

impl MappingHeuristic for Sufferage {
    fn name(&self) -> &'static str {
        "Sufferage"
    }
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        run_two_phase(input, Kind::Sufferage, scratch)
    }
}

impl MappingHeuristic for Pam {
    fn name(&self) -> &'static str {
        "PAM"
    }
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        run_two_phase(input, Kind::Pam, scratch)
    }
}

/// Mutable mapper state: machine tails evolve as assignments are made.
///
/// The chain scratch and the PET×tail convolution cache are borrowed from
/// the caller's [`PolicyCtx`], so the `tail ⊛ exec` convolutions PAM
/// prices with survive *across* mapping events: when a machine's tail is
/// unchanged since the last event (its queue did not move), the cached
/// convolution is reused bit-identically instead of recomputed. Entries
/// key on the exact `(tail, exec)` inputs, so an in-call tail extension
/// (an assignment) invalidates by comparison — no explicit bookkeeping.
struct WorkState<'a> {
    pet: &'a PetMatrix,
    compaction: Compaction,
    machines: Vec<MachineView>,
    tail_means: Vec<f64>,
    types: usize,
    /// Fused tail-extension scratch (one materialisation per assignment).
    eval: &'a mut ChainEvaluator,
    /// Persistent `tail ⊛ exec` cache keyed by (machine id, task type).
    cache: &'a mut TailCache,
}

impl<'a> WorkState<'a> {
    fn new(input: &MappingInput<'a>, scratch: &'a mut PolicyCtx) -> Self {
        let machines = input.machines.clone();
        let tail_means: Vec<f64> =
            machines.iter().map(|m| m.tail.mean().unwrap_or(input.now as f64)).collect();
        let types = input.pet.task_types();
        let PolicyCtx { eval, tails, .. } = scratch;
        WorkState {
            pet: input.pet,
            compaction: input.compaction,
            machines,
            tail_means,
            types,
            eval,
            cache: tails,
        }
    }

    fn expected_completion(&self, mi: usize, task: &UnmappedView) -> f64 {
        self.tail_means[mi] + self.pet.mean_exec(task.type_id, self.machines[mi].machine_type)
    }

    fn chance(&mut self, mi: usize, task: &UnmappedView) -> f64 {
        let exec = self.pet.pmf(task.type_id, self.machines[mi].machine_type);
        let conv = self.cache.conv(
            self.machines[mi].machine.index(),
            task.type_id.index(),
            self.types,
            &self.machines[mi].tail,
            exec,
        );
        conv.mass_before(task.deadline)
    }

    fn assign(&mut self, mi: usize, task: &UnmappedView) {
        let exec = self.pet.pmf(task.type_id, self.machines[mi].machine_type);
        let step = ChainTask { deadline: task.deadline, exec };
        let (_, tail) = self.eval.step_from(&self.machines[mi].tail, step, self.compaction);
        self.tail_means[mi] = tail.mean().unwrap_or(self.tail_means[mi]);
        self.machines[mi].tail = tail;
        self.machines[mi].free_slots -= 1;
        // No cache invalidation needed: the tail just changed, so stale
        // convolution entries fail their input comparison on next lookup.
    }
}

/// A phase-1 pairing of one task with its best machine.
struct Pair {
    /// Position in `remaining`.
    pos: usize,
    mi: usize,
    completion: f64,
    /// Second-best minus best expected completion (Sufferage only; infinity
    /// when a single machine has free slots — the task has no alternative).
    sufferage: f64,
}

fn run_two_phase(input: MappingInput<'_>, kind: Kind, scratch: &mut PolicyCtx) -> Vec<Assignment> {
    let mut state = WorkState::new(&input, scratch);
    // (original index, view) of still-unmapped tasks.
    let mut remaining: Vec<(usize, UnmappedView)> =
        input.unmapped.iter().copied().enumerate().collect();
    let mut out = Vec::new();

    loop {
        if remaining.is_empty() {
            break;
        }
        let any_free = state.machines.iter().any(|m| m.free_slots > 0);
        if !any_free {
            break;
        }

        // Phase 1: pair each task with its best free-slot machine.
        let mut pairs: Vec<Pair> = Vec::with_capacity(remaining.len());
        for (pos, (_, task)) in remaining.iter().enumerate() {
            let mut best: Option<(usize, f64, f64)> = None; // (mi, key, completion)
            let mut runner_up = f64::INFINITY; // second-best completion
            for mi in 0..state.machines.len() {
                if state.machines[mi].free_slots == 0 {
                    continue;
                }
                let completion = state.expected_completion(mi, task);
                // Lower key is better; PAM maximises chance with completion
                // as tie-breaker, folded into a lexicographic pair.
                let key = match kind {
                    Kind::MinMin | Kind::MaxMin | Kind::Msd | Kind::Sufferage => completion,
                    Kind::Pam => -state.chance(mi, task),
                };
                let better = match best {
                    None => true,
                    Some((_, bk, bc)) => {
                        key < bk - f64::EPSILON
                            || ((key - bk).abs() <= f64::EPSILON && completion < bc)
                    }
                };
                if better {
                    if let Some((_, _, bc)) = best {
                        runner_up = runner_up.min(bc);
                    }
                    best = Some((mi, key, completion));
                } else {
                    runner_up = runner_up.min(completion);
                }
            }
            if let Some((mi, _, completion)) = best {
                let sufferage =
                    if runner_up.is_finite() { runner_up - completion } else { f64::INFINITY };
                pairs.push(Pair { pos, mi, completion, sufferage });
            }
        }
        if pairs.is_empty() {
            break;
        }

        // Phase 2: per machine, select the winning pair.
        let mut winner: Vec<Option<usize>> = vec![None; state.machines.len()];
        for (pi, pair) in pairs.iter().enumerate() {
            let current = &mut winner[pair.mi];
            let better = match *current {
                None => true,
                Some(prev_pi) => {
                    let prev = &pairs[prev_pi];
                    phase2_beats(kind, &state, &remaining, pair, prev)
                }
            };
            if better {
                *current = Some(pi);
            }
        }

        // Apply winners (machine order for determinism), then prune.
        let mut assigned_pos: Vec<usize> = Vec::new();
        for (mi, slot) in winner.iter().enumerate() {
            let Some(pi) = *slot else { continue };
            let pair = &pairs[pi];
            let (orig_idx, task) = remaining[pair.pos];
            out.push(Assignment { task_idx: orig_idx, machine: state.machines[mi].machine });
            state.assign(mi, &task);
            assigned_pos.push(pair.pos);
        }
        if assigned_pos.is_empty() {
            break;
        }
        assigned_pos.sort_unstable();
        let mut keep = Vec::with_capacity(remaining.len() - assigned_pos.len());
        let mut drop_iter = assigned_pos.iter().peekable();
        for (pos, entry) in remaining.into_iter().enumerate() {
            if drop_iter.peek() == Some(&&pos) {
                drop_iter.next();
            } else {
                keep.push(entry);
            }
        }
        remaining = keep;
    }
    out
}

/// Phase-2 comparison: does `a` beat `b` for the same machine?
fn phase2_beats(
    kind: Kind,
    state: &WorkState<'_>,
    remaining: &[(usize, UnmappedView)],
    a: &Pair,
    b: &Pair,
) -> bool {
    let ta = &remaining[a.pos].1;
    let tb = &remaining[b.pos].1;
    let key = |pair: &Pair, t: &UnmappedView| -> (f64, f64, u64) {
        match kind {
            // MinMin: min completion, ties by task id.
            Kind::MinMin => (pair.completion, 0.0, t.id.0),
            // MaxMin: max completion (serve the longest pair first).
            Kind::MaxMin => (-pair.completion, 0.0, t.id.0),
            // MSD: soonest deadline, ties by min completion, then task id.
            Kind::Msd => (t.deadline as f64, pair.completion, t.id.0),
            // PAM: min completion, ties by shortest expected execution.
            Kind::Pam => (
                pair.completion,
                state.pet.mean_exec(t.type_id, state.machines[pair.mi].machine_type),
                t.id.0,
            ),
            // Sufferage: the task that suffers most without this slot wins;
            // ties by min completion, then task id.
            Kind::Sufferage => (-pair.sufferage, pair.completion, t.id.0),
        }
    };
    key(a, ta) < key(b, tb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{inconsistent_pet, machine, task};
    use taskdrop_model::MachineId;

    fn input<'a>(
        pet: &'a PetMatrix,
        machines: Vec<MachineView>,
        unmapped: &'a [UnmappedView],
    ) -> MappingInput<'a> {
        MappingInput { now: 0, pet, machines, unmapped, compaction: Compaction::None }
    }

    #[test]
    fn minmin_prefers_fast_machine_per_type() {
        let pet = inconsistent_pet();
        let tasks = vec![task(0, 0, 0, 1000), task(1, 1, 0, 1000)];
        let mm = MinMin;
        let asg = mm.map_fresh(input(&pet, vec![machine(0, 0, 3, 0), machine(1, 1, 3, 0)], &tasks));
        assert_eq!(asg.len(), 2);
        // Type 0 is fast (10) on machine 0; type 1 fast on machine 1.
        let m_of = |idx: usize| asg.iter().find(|a| a.task_idx == idx).unwrap().machine;
        assert_eq!(m_of(0), MachineId(0));
        assert_eq!(m_of(1), MachineId(1));
    }

    #[test]
    fn minmin_respects_free_slots() {
        let pet = inconsistent_pet();
        let tasks: Vec<_> = (0..5).map(|i| task(i, 0, 0, 1000)).collect();
        let asg =
            MinMin.map_fresh(input(&pet, vec![machine(0, 0, 2, 0), machine(1, 1, 1, 0)], &tasks));
        assert_eq!(asg.len(), 3);
        let to_m0 = asg.iter().filter(|a| a.machine == MachineId(0)).count();
        let to_m1 = asg.iter().filter(|a| a.machine == MachineId(1)).count();
        assert_eq!(to_m0, 2);
        assert_eq!(to_m1, 1);
    }

    #[test]
    fn minmin_no_duplicate_assignments() {
        let pet = inconsistent_pet();
        let tasks: Vec<_> = (0..10).map(|i| task(i, (i % 2) as u16, 0, 1000)).collect();
        let asg =
            MinMin.map_fresh(input(&pet, vec![machine(0, 0, 4, 0), machine(1, 1, 4, 0)], &tasks));
        let mut seen: Vec<usize> = asg.iter().map(|a| a.task_idx).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), asg.len());
    }

    #[test]
    fn minmin_spreads_load_as_tails_grow() {
        // All tasks type 0: machine 0 takes 10, machine 1 takes 40. With 4
        // tasks and deep queues, MinMin sends the first three to machine 0
        // (completions 10,20,30) and the fourth compares 40 vs 40 -> still
        // machine 0 or 1 depending on tie; check total mapped = 4 and at
        // least 3 go to the fast machine.
        let pet = inconsistent_pet();
        let tasks: Vec<_> = (0..4).map(|i| task(i, 0, 0, 10_000)).collect();
        let asg =
            MinMin.map_fresh(input(&pet, vec![machine(0, 0, 6, 0), machine(1, 1, 6, 0)], &tasks));
        assert_eq!(asg.len(), 4);
        let fast = asg.iter().filter(|a| a.machine == MachineId(0)).count();
        assert!(fast >= 3, "fast machine got {fast}");
    }

    #[test]
    fn msd_orders_by_deadline() {
        let pet = inconsistent_pet();
        // One slot: the sooner-deadline task must win it even though both
        // prefer machine 0.
        let tasks = vec![task(0, 0, 0, 5000), task(1, 0, 0, 50)];
        let asg = Msd.map_fresh(input(&pet, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(asg.len(), 1);
        assert_eq!(asg[0].task_idx, 1);
    }

    #[test]
    fn minmin_picks_min_completion_for_single_slot() {
        let pet = inconsistent_pet();
        // Type 0 completes in 10, type 1 in 40 on machine 0; MinMin gives
        // the slot to the faster task regardless of deadlines.
        let tasks = vec![task(0, 1, 0, 50), task(1, 0, 0, 5000)];
        let asg = MinMin.map_fresh(input(&pet, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(asg.len(), 1);
        assert_eq!(asg[0].task_idx, 1);
    }

    #[test]
    fn pam_prefers_highest_chance() {
        let pet = inconsistent_pet();
        // Machine 0 busy until 100; machine 1 free now. Task type 0 with
        // deadline 60: machine 0 gives chance 0 (start at 100), machine 1
        // gives completion 40 < 60 -> chance 1. PAM must pick machine 1 even
        // though expected completion on machine 0 (110) loses to 40 anyway;
        // sharpen by making machine 1 slower overall: tail 0 + exec 40 = 40
        // vs machine 0: 100 + 10 = 110. Chance logic and completion agree
        // here; the distinguishing case is below.
        let tasks = vec![task(0, 0, 0, 60)];
        let asg =
            Pam.map_fresh(input(&pet, vec![machine(0, 0, 1, 100), machine(1, 1, 1, 0)], &tasks));
        assert_eq!(asg[0].machine, MachineId(1));
    }

    #[test]
    fn pam_chance_beats_completion() {
        let pet = inconsistent_pet();
        // Machine 0 frees at 55, machine 1 at 0. Task type 0 deadline 70:
        //   machine 0: completes at 65 < 70 -> chance 1, completion 65.
        //   machine 1: completes at 40 < 70 -> chance 1, completion 40.
        // Equal chance; tie-break by completion -> machine 1.
        let tasks = vec![task(0, 0, 0, 70)];
        let asg =
            Pam.map_fresh(input(&pet, vec![machine(0, 0, 1, 55), machine(1, 1, 1, 0)], &tasks));
        assert_eq!(asg[0].machine, MachineId(1));

        // Now deadline 50: machine 0 chance 0 (65 >= 50), machine 1 chance 1
        // (40 < 50). PAM must pick machine 1; MinMin would also pick 1 here,
        // so flip speeds: make the chance-1 machine the *slow* one.
        //   machine 0 (type column 0, exec 10) frees at 45 -> completes 55, chance 0.
        //   machine 1 (type column 1, exec 40) frees at 0 -> completes 40, chance 1.
        // Expected completion favours machine 1 too... the real separator:
        let tasks = vec![task(0, 0, 0, 56)];
        // machine 0: completes 55 < 56 -> chance 1, completion 55.
        // machine 1: completes 40 < 56 -> chance 1, completion 40.
        // tie on chance, completion picks machine 1.
        let asg =
            Pam.map_fresh(input(&pet, vec![machine(0, 0, 1, 45), machine(1, 1, 1, 0)], &tasks));
        assert_eq!(asg[0].machine, MachineId(1));
    }

    #[test]
    fn pam_uses_probability_mass_not_means() {
        // Execution PMF with 50/50 split: mean completion equal on both
        // machines, but the deadline cuts them differently.
        use taskdrop_pmf::Pmf;
        let pet = PetMatrix::new(
            1,
            2,
            vec![
                // Machine type 0: always 30 (mean 30).
                Pmf::point(30),
                // Machine type 1: 10 or 50 (mean 30).
                Pmf::from_impulses(vec![(10, 0.5), (50, 0.5)]).unwrap(),
            ],
        );
        // Deadline 35: machine 0 chance 1.0; machine 1 chance 0.5.
        let tasks = vec![task(0, 0, 0, 35)];
        let asg =
            Pam.map_fresh(input(&pet, vec![machine(0, 0, 1, 0), machine(1, 1, 1, 0)], &tasks));
        assert_eq!(asg[0].machine, MachineId(0));
        // Deadline 15: machine 0 chance 0; machine 1 chance 0.5.
        let tasks = vec![task(0, 0, 0, 15)];
        let asg =
            Pam.map_fresh(input(&pet, vec![machine(0, 0, 1, 0), machine(1, 1, 1, 0)], &tasks));
        assert_eq!(asg[0].machine, MachineId(1));
    }

    #[test]
    fn empty_batch_maps_nothing() {
        let pet = inconsistent_pet();
        for h in [&MinMin as &dyn MappingHeuristic, &Msd, &Pam] {
            let asg = h.map_fresh(input(&pet, vec![machine(0, 0, 3, 0)], &[]));
            assert!(asg.is_empty(), "{}", h.name());
        }
    }

    #[test]
    fn no_free_slots_maps_nothing() {
        let pet = inconsistent_pet();
        let tasks = vec![task(0, 0, 0, 100)];
        for h in [&MinMin as &dyn MappingHeuristic, &Msd, &Pam] {
            let asg =
                h.map_fresh(input(&pet, vec![machine(0, 0, 0, 0), machine(1, 1, 0, 0)], &tasks));
            assert!(asg.is_empty(), "{}", h.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MinMin.name(), "MM");
        assert_eq!(MaxMin.name(), "MaxMin");
        assert_eq!(Msd.name(), "MSD");
        assert_eq!(Pam.name(), "PAM");
        assert_eq!(Sufferage.name(), "Sufferage");
    }

    #[test]
    fn maxmin_serves_long_pair_first() {
        let pet = inconsistent_pet();
        // Single slot on machine 0: type 0 completes in 10, type 1 in 40.
        // MinMin gives the slot to the short task; MaxMin to the long one.
        let tasks = vec![task(0, 0, 0, 10_000), task(1, 1, 0, 10_000)];
        let min = MinMin.map_fresh(input(&pet, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(min[0].task_idx, 0);
        let max = MaxMin.map_fresh(input(&pet, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(max[0].task_idx, 1);
    }

    #[test]
    fn sufferage_prioritises_most_penalised_task() {
        // Type 0: 10 on m0, 40 on m1 -> sufferage 30.
        // Type 1: 40 on m0... both prefer m0? type 1: 40 on m0, 10 on m1 ->
        // prefers m1. No contention. Build contention: two type-0 tasks and
        // one slot on m0 (their fast machine), plus m1 with a slot.
        //   Task A (type 0): best m0 (10), second m1 (40) -> sufferage 30.
        //   Task B (type 1): best m1 (10), second m0 (40) -> sufferage 30.
        // Add task C (type 0): also best m0 -> contends with A on m0; equal
        // sufferage, ties by completion then id -> A (lower id) wins m0.
        let pet = inconsistent_pet();
        let tasks = vec![task(0, 0, 0, 10_000), task(1, 1, 0, 10_000), task(2, 0, 0, 10_000)];
        let asg = Sufferage.map_fresh(input(
            &pet,
            vec![machine(0, 0, 1, 0), machine(1, 1, 1, 0)],
            &tasks,
        ));
        assert_eq!(asg.len(), 2);
        let m_of = |idx: usize| asg.iter().find(|a| a.task_idx == idx).map(|a| a.machine);
        assert_eq!(m_of(0), Some(MachineId(0)), "task A takes its fast machine");
        assert_eq!(m_of(1), Some(MachineId(1)), "task B takes its fast machine");
        assert_eq!(m_of(2), None, "task C is left for the next event");
    }

    #[test]
    fn sufferage_single_machine_still_assigns() {
        // With one machine there is no alternative: sufferage is infinite
        // for every task; ties resolve by completion then id.
        let pet = inconsistent_pet();
        let tasks = vec![task(3, 0, 0, 10_000), task(1, 0, 0, 10_000)];
        let asg = Sufferage.map_fresh(input(&pet, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(asg.len(), 1);
        assert_eq!(asg[0].task_idx, 1, "equal completion: lower id wins");
    }
}
