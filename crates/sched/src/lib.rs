//! Batch-mode mapping heuristics for heterogeneous computing systems.
//!
//! The paper's dropping mechanism is deliberately independent of the mapping
//! heuristic; its evaluation plugs the dropper into six widely-used mappers,
//! all implemented here behind the [`MappingHeuristic`] trait:
//!
//! **Heterogeneous two-phase heuristics** (Section V-B of the paper):
//!
//! * [`MinMin`] (MM) — phase 1 pairs each task with the machine offering the
//!   minimum expected completion time; phase 2 assigns, per machine with a
//!   free slot, the pair with the minimum completion time.
//! * [`Msd`] (MinCompletion–Soonest-Deadline) — phase 1 as MinMin; phase 2
//!   picks the pair with the soonest deadline (ties by minimum completion).
//! * [`Pam`] (Pruning-Aware Mapping, deferring disabled per the paper) —
//!   phase 1 pairs each task with the machine giving the highest chance of
//!   success; phase 2 assigns the pair with the lowest expected completion
//!   time (ties by shortest expected execution).
//!
//! **Homogeneous ordering heuristics** (Section V-E): [`Fcfs`], [`Edf`],
//! [`Sjf`] — order the batch queue by arrival / deadline / expected
//! execution time and assign each task to the machine with the earliest
//! expected availability. They run fine on heterogeneous systems too; the
//! paper uses them on the homogeneous scenario.
//!
//! All heuristics are deterministic: ties ultimately break on task id and
//! machine id.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod ordered;
mod registry;
mod two_phase;

pub use ordered::{Edf, Fcfs, OrderedHeuristic, Sjf};
pub use registry::HeuristicKind;
pub use two_phase::{MaxMin, MinMin, Msd, Pam, Sufferage};

use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::view::{Assignment, MappingInput};

/// A batch-mode mapping heuristic: given machines with free queue slots and
/// the unmapped batch queue, produce task-to-machine assignments.
///
/// Implementations must be deterministic (the whole simulator is replayable
/// from a seed) and must never assign more tasks to a machine than it has
/// free slots, nor assign the same task twice. The engine validates both.
///
/// Heuristics are stateless values (`&self`); all mutable working state —
/// chain-evaluator scratch and the persistent PET×tail convolution cache —
/// lives in the caller-owned [`PolicyCtx`] threaded through every call.
/// Assignments must not depend on what a previous call left in the context.
pub trait MappingHeuristic: Send + Sync {
    /// Stable identifier used in reports and configs (e.g. `"MM"`).
    fn name(&self) -> &'static str;

    /// Computes assignments for this mapping event, using `scratch` for
    /// all chain evaluation and convolution caching.
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment>;

    /// One-shot convenience: [`MappingHeuristic::map`] against a fresh
    /// [`PolicyCtx`] — the reference path persistent-context results are
    /// compared against in tests. Production drivers reuse one context.
    fn map_fresh(&self, input: MappingInput<'_>) -> Vec<Assignment> {
        self.map(input, &mut PolicyCtx::new())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use taskdrop_model::view::{MachineView, UnmappedView};
    use taskdrop_model::{MachineId, MachineTypeId, PetMatrix, TaskId, TaskTypeId};
    use taskdrop_pmf::{Pmf, Tick};

    /// PET with 2 task types x 2 machine types, deterministic times:
    /// type 0: 10 on m0, 40 on m1; type 1: 40 on m0, 10 on m1
    /// (inconsistent heterogeneity: each type prefers a different machine).
    pub fn inconsistent_pet() -> PetMatrix {
        PetMatrix::new(2, 2, vec![Pmf::point(10), Pmf::point(40), Pmf::point(40), Pmf::point(10)])
    }

    pub fn machine(id: u16, mtype: u16, free: usize, ready_at: Tick) -> MachineView {
        MachineView {
            machine: MachineId(id),
            machine_type: MachineTypeId(mtype),
            free_slots: free,
            tail: Pmf::point(ready_at),
        }
    }

    pub fn task(id: u64, ttype: u16, arrival: Tick, deadline: Tick) -> UnmappedView {
        UnmappedView { id: TaskId(id), type_id: TaskTypeId(ttype), arrival, deadline }
    }
}
