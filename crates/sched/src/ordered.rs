//! Ordering heuristics popular in homogeneous systems: FCFS, EDF, SJF.
//!
//! These sort the batch queue by a scalar key and greedily assign each task
//! to the machine with the earliest expected availability (on a homogeneous
//! system: the least-loaded machine). They are exactly the three baselines
//! of the paper's Figure 7b, and they also run on heterogeneous systems
//! (SJF then keys on the task type's mean execution time across machine
//! types).

use crate::MappingHeuristic;
use taskdrop_model::ctx::PolicyCtx;
use taskdrop_model::queue::ChainTask;
use taskdrop_model::view::{Assignment, MappingInput};

/// The sort key an [`OrderedHeuristic`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderKey {
    /// First come, first serve: ascending arrival time.
    Arrival,
    /// Earliest deadline first.
    Deadline,
    /// Shortest job first: ascending mean execution time of the task type.
    MeanExec,
}

/// Shared implementation for FCFS / EDF / SJF.
#[derive(Debug, Clone, Copy)]
pub struct OrderedHeuristic {
    key: OrderKey,
    name: &'static str,
}

/// First-come-first-serve mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

/// Earliest-deadline-first mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct Edf;

/// Shortest-job-first mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sjf;

impl OrderedHeuristic {
    /// Creates an ordering heuristic with an explicit key and display name.
    #[must_use]
    pub fn new(key: OrderKey, name: &'static str) -> Self {
        OrderedHeuristic { key, name }
    }
}

impl MappingHeuristic for OrderedHeuristic {
    fn name(&self) -> &'static str {
        self.name
    }

    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        let MappingInput { now, pet, mut machines, unmapped, compaction } = input;
        let mut order: Vec<usize> = (0..unmapped.len()).collect();
        order.sort_by(|&a, &b| {
            let ta = &unmapped[a];
            let tb = &unmapped[b];
            let ka = match self.key {
                OrderKey::Arrival => ta.arrival as f64,
                OrderKey::Deadline => ta.deadline as f64,
                OrderKey::MeanExec => pet.type_mean(ta.type_id),
            };
            let kb = match self.key {
                OrderKey::Arrival => tb.arrival as f64,
                OrderKey::Deadline => tb.deadline as f64,
                OrderKey::MeanExec => pet.type_mean(tb.type_id),
            };
            ka.total_cmp(&kb).then(ta.id.cmp(&tb.id))
        });

        let mut tail_means: Vec<f64> =
            machines.iter().map(|m| m.tail.mean().unwrap_or(now as f64)).collect();
        let mut out = Vec::new();
        let eval = &mut scratch.eval;
        for idx in order {
            let task = &unmapped[idx];
            // Earliest expected completion among machines with a free slot.
            let mut best: Option<(usize, f64)> = None;
            for (mi, m) in machines.iter().enumerate() {
                if m.free_slots == 0 {
                    continue;
                }
                let completion = tail_means[mi] + pet.mean_exec(task.type_id, m.machine_type);
                if best.is_none_or(|(_, bc)| completion < bc) {
                    best = Some((mi, completion));
                }
            }
            let Some((mi, _)) = best else { break };
            let exec = pet.pmf(task.type_id, machines[mi].machine_type);
            let step = ChainTask { deadline: task.deadline, exec };
            let (_, tail) = eval.step_from(&machines[mi].tail, step, compaction);
            tail_means[mi] = tail.mean().unwrap_or(tail_means[mi]);
            machines[mi].tail = tail;
            machines[mi].free_slots -= 1;
            out.push(Assignment { task_idx: idx, machine: machines[mi].machine });
        }
        out
    }
}

impl MappingHeuristic for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        OrderedHeuristic::new(OrderKey::Arrival, "FCFS").map(input, scratch)
    }
}

impl MappingHeuristic for Edf {
    fn name(&self) -> &'static str {
        "EDF"
    }
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        OrderedHeuristic::new(OrderKey::Deadline, "EDF").map(input, scratch)
    }
}

impl MappingHeuristic for Sjf {
    fn name(&self) -> &'static str {
        "SJF"
    }
    fn map(&self, input: MappingInput<'_>, scratch: &mut PolicyCtx) -> Vec<Assignment> {
        OrderedHeuristic::new(OrderKey::MeanExec, "SJF").map(input, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{inconsistent_pet, machine, task};
    use taskdrop_model::view::MappingInput;
    use taskdrop_model::MachineId;
    use taskdrop_pmf::Compaction;

    fn input<'a>(
        pet: &'a taskdrop_model::PetMatrix,
        machines: Vec<taskdrop_model::view::MachineView>,
        unmapped: &'a [taskdrop_model::view::UnmappedView],
    ) -> MappingInput<'a> {
        MappingInput { now: 0, pet, machines, unmapped, compaction: Compaction::None }
    }

    #[test]
    fn fcfs_respects_arrival_order() {
        let pet = inconsistent_pet();
        // Later-arrived task listed first; single slot must go to earlier.
        let tasks = vec![task(5, 0, 100, 1000), task(2, 0, 10, 1000)];
        let asg = Fcfs.map_fresh(input(&pet, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(asg.len(), 1);
        assert_eq!(asg[0].task_idx, 1);
    }

    #[test]
    fn edf_picks_soonest_deadline() {
        let pet = inconsistent_pet();
        let tasks = vec![task(0, 0, 0, 900), task(1, 0, 50, 200)];
        let asg = Edf.map_fresh(input(&pet, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(asg[0].task_idx, 1);
    }

    #[test]
    fn sjf_picks_shortest_type() {
        let pet = inconsistent_pet(); // type means: both (10+40)/2 = 25 -- equal!
                                      // Use a PET where type means differ.
        use taskdrop_pmf::Pmf;
        let pet2 = taskdrop_model::PetMatrix::new(2, 1, vec![Pmf::point(100), Pmf::point(10)]);
        let tasks = vec![task(0, 0, 0, 10_000), task(1, 1, 0, 10_000)];
        let asg = Sjf.map_fresh(input(&pet2, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(asg[0].task_idx, 1, "SJF must map the short type first");
        // On the equal-mean PET, ties break by task id.
        let tasks = vec![task(7, 0, 0, 10_000), task(3, 1, 0, 10_000)];
        let asg = Sjf.map_fresh(input(&pet, vec![machine(0, 0, 1, 0)], &tasks));
        assert_eq!(asg[0].task_idx, 1);
    }

    #[test]
    fn least_loaded_machine_wins() {
        let pet = inconsistent_pet();
        // Homogeneous pair (same machine type): machine 1 frees earlier.
        let tasks = vec![task(0, 0, 0, 10_000)];
        let asg =
            Fcfs.map_fresh(input(&pet, vec![machine(0, 0, 3, 500), machine(1, 0, 3, 100)], &tasks));
        assert_eq!(asg[0].machine, MachineId(1));
    }

    #[test]
    fn fills_all_slots_then_stops() {
        let pet = inconsistent_pet();
        let tasks: Vec<_> = (0..10).map(|i| task(i, 0, i * 5, 10_000)).collect();
        let asg =
            Fcfs.map_fresh(input(&pet, vec![machine(0, 0, 2, 0), machine(1, 0, 2, 0)], &tasks));
        assert_eq!(asg.len(), 4);
    }

    #[test]
    fn heuristic_names() {
        assert_eq!(Fcfs.name(), "FCFS");
        assert_eq!(Edf.name(), "EDF");
        assert_eq!(Sjf.name(), "SJF");
    }
}
