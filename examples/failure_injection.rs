//! Extension: resource-failure uncertainty (the paper's future work).
//!
//! The paper's conclusion names "other types of compound uncertainties, such
//! as those resulted from network latency and resource failure" as future
//! work. This example injects machine failures (exponential up/down times)
//! on top of the execution-time and arrival uncertainties and asks: does the
//! autonomous proactive dropper still earn its keep when machines flake?
//!
//! ```sh
//! cargo run --release --example failure_injection            # full scale
//! cargo run --release --example failure_injection -- --quick  # smoke scale
//! ```

use taskdrop::prelude::*;
use taskdrop::sim::FailureSpec;

fn main() {
    let scale = taskdrop::demo::scale_from_args();
    let scenario = Scenario::specint(0xA5);
    let level = OversubscriptionLevel::new("flaky", 3_000, 16_000).scaled(scale);
    let runner = TrialRunner::new(taskdrop::demo::quick_trials(4, scale), 0xFA11);

    println!(
        "{:>14} {:>8} {:>22} {:>22} {:>7}",
        "MTBF/MTTR", "avail", "PAM+Heuristic", "PAM+ReactDrop", "gain"
    );
    let cases: [(Option<FailureSpec>, &str); 4] = [
        (None, "healthy"),
        (Some(FailureSpec { mtbf: 8_000, mttr: 500 }), "8s/0.5s"),
        (Some(FailureSpec { mtbf: 3_000, mttr: 800 }), "3s/0.8s"),
        (Some(FailureSpec { mtbf: 1_200, mttr: 900 }), "1.2s/0.9s"),
    ];
    for (failures, label) in cases {
        let avail = failures.map_or(1.0, |f| f.availability());
        // One chainable entry point instead of hand-wiring RunSpec + runner.
        let run = |dropper| {
            ExperimentBuilder::specint(0xA5)
                .at_level(level.clone())
                .gamma(1.0)
                .mapper(HeuristicKind::Pam)
                .dropper(dropper)
                .config(SimConfig { failures, ..taskdrop::demo::scaled_config(scale) })
                .trials(runner.trials)
                .master_seed(runner.master_seed)
                .build()
                .expect("valid experiment")
                .run_on(&scenario)
                .expect("valid experiment")
        };
        let with = run(DropperKind::heuristic_default());
        let without = run(DropperKind::ReactiveOnly);
        let lost: usize = with.trials.iter().map(|t| t.lost_to_failure).sum();
        let (w, wo) = (with.robustness().expect("trials"), without.robustness().expect("trials"));
        println!(
            "{label:>14} {:>7.1}% {:>15.1} ±{:>4.1} {:>15.1} ±{:>4.1} {:>6.1}  ({} tasks lost mid-run)",
            avail * 100.0,
            w.mean,
            w.ci95,
            wo.mean,
            wo.ci95,
            w.mean - wo.mean,
            lost,
        );
    }

    println!(
        "\nFailures shrink effective capacity (deeper oversubscription) and add\n\
         estimation error the PET matrix knows nothing about — yet the dropping\n\
         mechanism's advantage persists, because it reasons about *relative*\n\
         chances along each queue, not absolute guarantees."
    );
}
