//! Extension: approximate computing — the paper's named future work.
//!
//! *"In future, we plan to extend the probabilistic analysis to consider
//! approximately computing tasks, in addition to task dropping."* (paper
//! conclusion). Instead of discarding a doomed task, the [`ApproxDropper`]
//! may *degrade* it: run a cheaper approximate variant (e.g. a lower-quality
//! transcoding preset) that takes `time_factor` of the full execution time
//! and yields `value` of the full utility. The decision generalises Eq 8 to
//! three futures per task — keep, degrade, drop — chosen by expected
//! utility over the effective depth.
//!
//! ```sh
//! cargo run --release --example approximate_computing            # full scale
//! cargo run --release --example approximate_computing -- --quick  # smoke scale
//! ```

use taskdrop::core::ApproxDropper;
use taskdrop::model::ApproxSpec;
use taskdrop::prelude::*;

fn main() {
    let scale = taskdrop::demo::scale_from_args();
    let scenario = Scenario::specint(0xA5);
    let level = OversubscriptionLevel::new("approx", 3_000, 16_000).scaled(scale);
    let runner = TrialRunner::new(taskdrop::demo::quick_trials(4, scale), 0xAB);

    println!(
        "oversubscribed SPECint workload, {} tasks/trial, {} trials\n",
        level.tasks, runner.trials
    );
    println!("{:<34} {:>14} {:>14} {:>10}", "policy", "robustness %", "utility %", "degraded");

    // Baseline: the paper's drop-only heuristic.
    let plain = RunSpec {
        level: level.clone(),
        gamma: 1.0,
        mapper: HeuristicKind::Pam,
        dropper: DropperKind::heuristic_default(),
        config: taskdrop::demo::scaled_config(scale),
    };
    let report = runner.run(&scenario, &plain);
    let utility: Vec<f64> = report.trials.iter().map(|t| t.utility_pct()).collect();
    println!(
        "{:<34} {:>14} {:>13.2}  {:>10}",
        "PAM + drop-only heuristic",
        report.robustness().expect("trials"),
        utility.iter().sum::<f64>() / utility.len() as f64,
        0
    );

    // Approximate computing at different quality/value trade-offs.
    for (factor, value) in [(0.5, 0.6), (0.3, 0.4), (0.7, 0.85)] {
        let spec = ApproxSpec::new(factor, value);
        let run = RunSpec {
            level: level.clone(),
            gamma: 1.0,
            mapper: HeuristicKind::Pam,
            dropper: DropperKind::Approx { beta: 1.0, eta: 2 },
            config: SimConfig { approx: Some(spec), ..taskdrop::demo::scaled_config(scale) },
        };
        let report = runner.run(&scenario, &run);
        let utility: Vec<f64> = report.trials.iter().map(|t| t.utility_pct()).collect();
        let degraded: usize = report.trials.iter().map(|t| t.on_time_approx).sum();
        println!(
            "{:<34} {:>14} {:>13.2}  {:>10}",
            format!("PAM + degrade (t x{factor}, v {value})"),
            report.robustness().expect("trials"),
            utility.iter().sum::<f64>() / utility.len() as f64,
            degraded / report.trials.len(),
        );
    }

    println!(
        "\nRobustness counts only full-fidelity on-time completions (the paper's\n\
         metric); utility also credits approximate completions at their value.\n\
         The trade is real: a degraded task still occupies its machine, so some\n\
         capacity that outright drops would have freed goes to salvage work and\n\
         full-fidelity robustness falls — but total delivered utility rises at\n\
         every setting, which is exactly what approximate computing buys. Note\n\
         the costlier variant (x0.7 time) engages far less often: the Eq-8\n\
         rescue comparison only degrades when it beats dropping."
    );

    // Show the mechanism is autonomous: no threshold anywhere.
    let _policy = ApproxDropper::paper_default();
}
