//! Sweep the oversubscription level and the deadline-slack coefficient γ to
//! map out *where* proactive dropping pays off.
//!
//! The paper evaluates three fixed arrival intensities; this example walks
//! the whole curve from an underloaded system (where dropping has nothing to
//! do) deep into overload (where it shines), at two slack settings.
//!
//! ```sh
//! cargo run --release --example oversubscription_sweep            # full scale
//! cargo run --release --example oversubscription_sweep -- --quick  # smoke scale
//! ```

use taskdrop::prelude::*;

fn main() {
    let scale = taskdrop::demo::scale_from_args();
    let scenario = Scenario::specint(0xA5);
    let runner = TrialRunner::new(taskdrop::demo::quick_trials(3, scale), 77);
    let base_tasks = 2_000usize;
    // Rate multipliers relative to a roughly-balanced system.
    let multipliers = [0.5, 0.8, 1.0, 1.25, 1.6, 2.0, 2.6];
    // Ticks such that multiplier 1.0 is near the effective capacity.
    let base_window = 22_000u64;

    for gamma in [1.0, 2.0] {
        println!("\nγ = {gamma} (deadline slack = avg_i + γ·avg_all)");
        println!(
            "{:>10} {:>12} {:>22} {:>22} {:>8}",
            "overload", "tasks/s", "PAM+Heuristic", "PAM+ReactDrop", "gain"
        );
        for mult in multipliers {
            let window = (base_window as f64 / mult) as u64;
            let level = OversubscriptionLevel::new("sweep", base_tasks, window).scaled(scale);
            // The fluent facade replaces the hand-built RunSpec + runner.
            let run = |dropper| {
                ExperimentBuilder::specint(0xA5)
                    .at_level(level.clone())
                    .gamma(gamma)
                    .mapper(HeuristicKind::Pam)
                    .dropper(dropper)
                    .config(taskdrop::demo::scaled_config(scale))
                    .trials(runner.trials)
                    .master_seed(runner.master_seed)
                    .build()
                    .expect("valid experiment")
                    .run_on(&scenario)
                    .expect("valid experiment")
                    .robustness()
                    .expect("trials")
            };
            let with = run(DropperKind::heuristic_default());
            let without = run(DropperKind::ReactiveOnly);
            println!(
                "{:>9.1}x {:>12.0} {:>15.1} ±{:>4.1} {:>15.1} ±{:>4.1} {:>7.1}",
                mult,
                level.rate() * 1000.0,
                with.mean,
                with.ci95,
                without.mean,
                without.ci95,
                with.mean - without.mean,
            );
        }
    }

    println!(
        "\nReading the curve: below ~1x the dropper is idle (nothing worth\n\
         dropping); past it, the gain grows with the overload — uncertainty in\n\
         arrivals is exactly where the mechanism earns its keep (paper §V-F)."
    );
}
