//! Anatomy of a dropping decision — the paper's Figures 2 and 3, live.
//!
//! Walks through the probabilistic machinery on a hand-built machine queue:
//! deadline-aware convolution (Eq 1), chance of success (Eq 2), dependence
//! and influence zones (Fig 3), and the Eq 8 comparison the proactive
//! heuristic makes before dropping a task.
//!
//! ```sh
//! cargo run --example dropping_anatomy            # no workload: --quick is a no-op
//! ```

use taskdrop::model::queue::{chain, chance_sum, dependence_zone, influence_zone, ChainTask};
use taskdrop::prelude::*;

fn show(name: &str, pmf: &Pmf) {
    let pairs: Vec<String> = pmf.iter().map(|i| format!("P(t={}) = {:.2}", i.t, i.p)).collect();
    println!("  {name}: {}", pairs.join(", "));
}

fn main() {
    // Hand-built queues only — nothing to scale, but accept/validate the
    // common example flags so the smoke test can drive every example alike.
    let _ = taskdrop::demo::scale_from_args();
    println!("== Paper Figure 2: deadline-aware convolution ==\n");
    // Execution-time PMF of pending task i and completion PMF of task i-1,
    // exactly as printed in the paper.
    let exec = Pmf::from_impulses(vec![(1, 0.6), (2, 0.4)]).unwrap();
    let prev = Pmf::from_impulses(vec![(10, 0.6), (11, 0.3), (12, 0.05), (13, 0.05)]).unwrap();
    let deadline = 13;
    show("exec-time PMF of task i   ", &exec);
    show("completion PMF of task i-1", &prev);
    let completion = deadline_convolve(&prev, &exec, deadline);
    show("completion PMF of task i  ", &completion);
    println!(
        "  chance of success p_ij = P(C < {deadline}) = {:.2}\n",
        chance_of_success(&completion, deadline)
    );

    println!("== Paper Figure 3: dependence and influence zones ==\n");
    let queue_len = 6;
    let i = 2;
    println!("  queue of {queue_len} tasks, task at position {i}:");
    println!("  dependence zone (determines when it starts): positions {:?}", dependence_zone(i));
    println!(
        "  influence zone (benefits if it is dropped) : positions {:?}\n",
        influence_zone(i, queue_len)
    );

    println!("== Equation 8: the heuristic's drop decision ==\n");
    // A machine whose queue holds a doomed heavyweight blocking two light
    // tasks. Execution PMFs come straight from a hand-written PET row.
    let heavy = Pmf::from_impulses(vec![(50, 0.5), (70, 0.5)]).unwrap();
    let light = Pmf::point(10);
    let base = Pmf::point(0); // idle machine
    let tasks = vec![
        ChainTask { deadline: 45, exec: &heavy }, // task A: can never finish on time
        ChainTask { deadline: 30, exec: &light }, // task B: fine if A vanishes
        ChainTask { deadline: 40, exec: &light }, // task C: likewise
    ];
    let links = chain(&base, &tasks, Compaction::None);
    for (k, l) in links.iter().enumerate() {
        println!(
            "  keep-everything chain: task {} chance = {:.2}",
            (b'A' + k as u8) as char,
            l.chance
        );
    }

    let eta = 2;
    let beta = 1.0;
    let keep: f64 = links.iter().take(eta + 1).map(|l| l.chance).sum();
    let drop = chance_sum(&base, &tasks[1..], eta, Compaction::None);
    println!("\n  Eq 8 for dropping task A (beta={beta}, eta={eta}):");
    println!("    keep-future  sum p_n (n = A..A+{eta})   = {keep:.2}");
    println!("    drop-future  sum p^(A)_n (n = B..B+{})  = {drop:.2}", eta - 1 + 1);
    println!(
        "    {drop:.2} > {beta}·{keep:.2}  ->  {}",
        if drop > beta * keep { "DROP task A" } else { "keep task A" }
    );

    let dropper = ProactiveDropper::paper_default();
    println!("\n  ProactiveDropper agrees: {:?}", {
        // Assemble the same queue as a policy view.
        use taskdrop::model::view::{PendingView, QueueView};
        let pet = PetMatrix::new(2, 1, vec![heavy.clone(), light.clone()]);
        let queue = QueueView {
            machine: MachineId(0),
            machine_type: MachineTypeId(0),
            now: 0,
            running: None,
            pending: vec![
                PendingView::full(TaskId(0), TaskTypeId(0), 45),
                PendingView::full(TaskId(1), TaskTypeId(1), 30),
                PendingView::full(TaskId(2), TaskTypeId(1), 40),
            ],
            pet: &pet,
            approx_pet: None,
        };
        let ctx = DropContext::plain(Compaction::None);
        dropper.select_drops_fresh(&queue, &ctx).drops
    });
    println!("  (position 0 = task A is proactively dropped)");
}
