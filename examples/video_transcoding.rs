//! The paper's motivating workload: live video transcoding on heterogeneous
//! cloud VMs (Section V-H / Figure 10).
//!
//! Four transcoding operations (resolution, bitrate, framerate, codec) run
//! on four VM types (general, CPU-optimised, memory-optimised, GPU), two
//! machines each. Each stream task has a hard deadline — a frame transcoded
//! late is worthless. This example compares the three heterogeneous mapping
//! heuristics with and without the autonomous proactive dropper.
//!
//! ```sh
//! cargo run --release --example video_transcoding            # full scale
//! cargo run --release --example video_transcoding -- --quick  # smoke scale
//! ```

use taskdrop::prelude::*;

fn main() {
    let scenario = Scenario::transcode(0xA5);
    println!("machines:");
    for m in &scenario.machines {
        let mt = &scenario.machine_types[m.type_id.index()];
        println!("  {}: {} (${}/h)", m.id, mt.name, mt.price_per_hour);
    }
    println!("task types:");
    for t in &scenario.task_types {
        println!("  {}: {} (mean {:.0} ms)", t.id, t.name, t.mean_exec);
    }

    // Moderate oversubscription, like the paper's transcoding traces.
    let scale = taskdrop::demo::scale_from_args();
    let level = OversubscriptionLevel::new("stream", 3_000, 36_000).scaled(scale);
    let runner = TrialRunner::new(taskdrop::demo::quick_trials(5, scale), 0xBEEF);
    println!(
        "\n{} tasks per trial, {} trials; robustness = % completed on time\n",
        level.tasks, runner.trials
    );

    println!("| mapper | + proactive dropping | + reactive only |");
    println!("|--------|----------------------|-----------------|");
    for mapper in [HeuristicKind::Msd, HeuristicKind::MinMin, HeuristicKind::Pam] {
        let mut cells = Vec::new();
        for dropper in [DropperKind::heuristic_default(), DropperKind::ReactiveOnly] {
            let spec = RunSpec {
                level: level.clone(),
                gamma: 1.0,
                mapper,
                dropper,
                config: taskdrop::demo::scaled_config(scale),
            };
            let report = runner.run(&scenario, &spec);
            cells.push(format!("{}", report.robustness().expect("trials")));
        }
        println!("| {} | {} | {} |", mapper.name(), cells[0], cells[1]);
    }

    println!(
        "\nAs in the paper's Figure 10: with the proactive dropper engaged, the\n\
         choice of mapping heuristic stops mattering — dropping hopeless tasks\n\
         forgives poor mapping decisions."
    );
}
