//! The parallel shard fleet: worker-count-invariant serving with
//! deterministic cross-shard work stealing.
//!
//! A [`FleetDriver`] runs each epoch's shards in parallel on a worker
//! pool, then merges at a single-threaded barrier in shard-index order:
//! steal decisions are planned from the merged backlog snapshot (a pure
//! function — never thread timing), buffered engine events drain into
//! telemetry, and periodic checkpoints are taken. The payoff demonstrated
//! here twice over:
//!
//! * **Worker-count invariance** — the same four-shard fleet is driven
//!   once on 1 worker and once on the requested pool, with a mid-run
//!   shard kill/restore in both; results, admission ledgers and the full
//!   telemetry JSONL stream are asserted byte-identical.
//! * **Stealing instead of shedding** — two `flash` shards saturate tiny
//!   ingress queues while two `spare` shards idle; at each barrier queued
//!   offers migrate to the shard with the most headroom, so work that a
//!   lone shard would have turned away completes on a sibling.
//!
//! ```sh
//! cargo run --release --example parallel_fleet             # full demo scale
//! cargo run --release --example parallel_fleet -- --quick  # seconds-scale smoke
//! cargo run --release --example parallel_fleet -- --workers 8
//! ```

use taskdrop::prelude::*;

struct Preset {
    epoch: u64,
    checkpoint_every: u64,
    hot_total: u64,
    cold_total: u64,
}

struct Args {
    preset: Preset,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut preset =
        Preset { epoch: 400, checkpoint_every: 1_600, hot_total: 220, cold_total: 400 };
    let mut workers = 4;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => {
                preset =
                    Preset { epoch: 400, checkpoint_every: 1_600, hot_total: 90, cold_total: 160 }
            }
            "--workers" => {
                workers = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w > 0)
                    .ok_or("--workers needs a positive integer")?;
            }
            other => return Err(format!("unknown argument {other}; expected --quick/--workers N")),
        }
    }
    Ok(Args { preset, workers })
}

/// Everything observable about one finished fleet run.
struct Outcome {
    results: Vec<TrialResult>,
    stats: Vec<AdmissionStats>,
    telemetry: String,
}

/// Assembles the four-shard fleet and drives the fixed choreography
/// (epochs, one mid-run kill/restore, drain) at the given worker count.
fn run(
    p: &Preset,
    scenario: &Scenario,
    dropper: &dyn taskdrop::core::DropPolicy,
    workers: usize,
) -> Result<Outcome, Box<dyn std::error::Error>> {
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let telemetry = Telemetry::new();
    let mut fleet = FleetDriver::new()
        .with_workers(workers)
        .with_checkpoint_every(p.checkpoint_every)
        .with_stealing(StealPolicy { saturation: 0.5, headroom: 0.9, max_per_epoch: 6 })
        .with_telemetry(&telemetry);
    let mut add = |name: &str, seed, source, cap| -> Result<(), Box<dyn std::error::Error>> {
        fleet.add_shard(FleetShard::new(
            name,
            scenario,
            &Pam,
            dropper,
            config,
            seed,
            source,
            AdmissionController::new(cap, BackpressurePolicy::Reject),
        )?);
        Ok(())
    };
    // Two flash crowds behind 8-slot front doors, two spare shards with
    // room: the imbalance the steal planner exists to exploit.
    let hot = |seed| {
        TrafficSource::Bursty(BurstySource::new(seed, 0.5, 0.0, 400, 900, 350, 12, p.hot_total))
    };
    let cold = |seed| {
        TrafficSource::Bursty(BurstySource::new(seed, 0.05, 0.0, 600, 1_200, 80, 12, p.cold_total))
    };
    add("flash-a", 7, hot(21), 8)?;
    add("flash-b", 8, hot(22), 8)?;
    add("spare-a", 9, cold(5), 32)?;
    add("spare-b", 10, cold(6), 32)?;

    for _ in 0..6 {
        fleet.advance(p.epoch)?;
    }
    // Destroy a saturated shard's live state and revive it from its last
    // checkpoint; the replay log re-applies the recorded migrations.
    let revived_at = fleet.kill_and_restore(0)?;
    assert!(revived_at <= fleet.clock());
    fleet.run_until_idle(p.epoch, 2_000)?;
    assert!(fleet.is_idle(), "fleet failed to drain");

    let mut results = Vec::new();
    for shard in fleet.shards() {
        results.push(shard.result()?);
    }
    Ok(Outcome {
        results,
        stats: fleet.shards().iter().map(|s| s.admission().stats()).collect(),
        telemetry: telemetry.jsonl(),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let Args { preset, workers } = parse_args()?;
    let scenario = Scenario::specint(3);
    let dropper = taskdrop::core::ProactiveDropper::paper_default();

    println!(
        "four-shard fleet on `{}`: epoch {}, stealing at the barrier, \
         kill/restore mid-run\n",
        scenario.name, preset.epoch
    );

    let baseline = run(&preset, &scenario, &dropper, 1)?;
    let parallel = run(&preset, &scenario, &dropper, workers)?;

    assert_eq!(parallel.results, baseline.results, "results diverged across worker counts");
    assert_eq!(parallel.stats, baseline.stats, "admission ledgers diverged");
    assert_eq!(parallel.telemetry, baseline.telemetry, "telemetry JSONL diverged");

    println!("per-shard outcome ({} workers == 1 worker, byte for byte):", workers);
    for (name, (result, stats)) in ["flash-a", "flash-b", "spare-a", "spare-b"]
        .iter()
        .zip(parallel.results.iter().zip(&parallel.stats))
    {
        println!(
            "  {:<8} offered {:>4} | admitted {:>4} rejected {:>3} expired {:>3} | \
             stolen out {:>3} in {:>3} | robustness {:>5.1} % | conserved {}",
            name,
            stats.offered,
            stats.admitted,
            stats.rejected_full,
            stats.expired,
            stats.stolen_out,
            stats.stolen_in,
            result.robustness_pct(),
            result.is_conserved(),
        );
    }

    let moved: u64 = parallel.stats.iter().map(|s| s.stolen_out).sum();
    let received: u64 = parallel.stats.iter().map(|s| s.stolen_in).sum();
    assert_eq!(moved, received, "migration ledger must balance fleet-wide");
    assert!(moved > 0, "the pressure imbalance must trigger stealing");
    let lines = parallel.telemetry.lines().count();
    println!(
        "\n{moved} queued offers migrated from saturated shards to idle siblings at the\n\
         epoch barriers — planned from the merged snapshot, never thread timing — so\n\
         all {lines} telemetry JSONL lines (and every result above) are identical at\n\
         1 and {workers} workers, across a mid-run shard kill and replay."
    );
    Ok(())
}
