//! Serverless function chains: dependency-aware execution over the
//! open-world core.
//!
//! A function chain is a linear [`TaskGraph`]: each stage becomes eligible
//! only when the previous stage delivers its output. The [`DagCoordinator`]
//! holds not-yet-ready stages outside the engine and releases each one via
//! `SimCore::inject` the moment its predecessor completes, so the paper's
//! single-task dropping machinery keeps working unmodified underneath.
//!
//! Two graph-level policies do the interesting work here:
//!
//! * **Function-chain merging** (`with_merging`): bursts contain *identical*
//!   pending requests — same chain, same arrival, same deadline. The
//!   coordinator executes one task and fans its completion out to every
//!   waiting chain, the serverless trick of deduplicating hot invocations.
//! * **Live subtree pruning** (`with_pruning`): each released node's
//!   *subtree* chance of success (own Eq-2 chance × weakest descendant
//!   chain) is priced against the queue tails at release; chains that can
//!   no longer make their deadlines are forfeited whole instead of wasting
//!   queue capacity on doomed prefixes.
//!
//! ```sh
//! cargo run --release --example function_chains             # full demo scale
//! cargo run --release --example function_chains -- --quick  # seconds-scale smoke
//! ```
//!
//! [`TaskGraph`]: taskdrop::dag::TaskGraph
//! [`DagCoordinator`]: taskdrop::dag::DagCoordinator

use std::cell::RefCell;
use taskdrop::prelude::*;
use taskdrop::workload::graphgen;

fn main() {
    let scale = taskdrop::demo::scale_from_args();
    let scenario = Scenario::specint(42);
    let config = taskdrop::demo::scaled_config(scale);
    let dropper = ProactiveDropper::paper_default();

    let bursts = ((48.0 * scale).round() as usize).max(6);
    let gap: u64 = 160;
    println!(
        "function chains on `{}`: {} bursts of identical requests, one every {} ticks\n",
        scenario.name, bursts, gap
    );

    // A printing observer shows the first few graph-level forfeits live —
    // pruned subtrees and cascades the moment the coordinator decides them.
    const SHOWN: usize = 8;
    let printed = RefCell::new(0usize);
    let mut core =
        SimCore::open(&scenario, &Pam, &dropper, config, 7).expect("valid configuration");
    core.attach(|ev: &SimEvent| {
        if let SimEvent::CascadeForfeited { graph, node, now, kind, .. } = *ev {
            let mut p = printed.borrow_mut();
            if *p < SHOWN {
                *p += 1;
                let why = match kind {
                    ForfeitKind::Pruned => "subtree chance below threshold at release",
                    ForfeitKind::Cascade => "an ancestor failed to deliver",
                    ForfeitKind::AdmissionShed => "admission refused the release",
                };
                println!("  [{now:>6}] forfeit chain {graph} stage {node}: {why}");
            }
        }
    });
    let tap = DagTap::new();
    tap.attach(&mut core);
    let mut coord = DagCoordinator::new().with_merging().with_pruning(0.3);

    for b in 0..bursts {
        let arrival = gap * b as u64;
        coord.advance(&mut core, &tap, arrival).expect("advance between bursts");
        // Each burst carries several *identical* requests for one chain —
        // same blueprint, same arrival, same deadlines — which is exactly
        // the shape merging collapses to a single execution.
        let dupes = 1 + b % 3;
        let len = 2 + b % 3;
        // Every fifth burst asks the impossible: its slack cannot cover
        // even one stage's execution, so pruning forfeits the whole chain
        // at release instead of queueing a doomed prefix.
        let slack = if b % 5 == 4 { 25 } else { 420 };
        let bp = graphgen::linear_chain(
            b as u64,
            arrival,
            len,
            scenario.task_type_count() as u16,
            slack,
        );
        let graph = TaskGraph::from_blueprint(&bp).expect("generated chains validate");
        for _ in 0..dupes {
            coord.add_graph(&mut core, graph.clone()).expect("chains inject cleanly");
        }
    }

    coord.run_to_drain(&mut core, &tap).expect("drain");
    assert!(coord.all_resolved() && coord.audit(), "conservation holds at drain");

    let st = coord.stats();
    println!("\ndrained at t={}: {} chains, {} stages total", core.now(), st.graphs, st.nodes);
    println!(
        "  executed {:>4} tasks ({} rode a merged twin — {:.0} % of the work deduplicated)",
        st.injected,
        st.merged,
        100.0 * st.merged as f64 / st.nodes as f64
    );
    println!(
        "  on time  {:>4} ({:.1} % of stages), {} late, {} dropped, {} lost",
        st.on_time + st.on_time_approx,
        100.0 * st.on_time_fraction(),
        st.late,
        st.dropped,
        st.lost
    );
    println!(
        "  forfeit  {:>4} without queueing: {} pruned subtrees, {} cascades, {} admission-shed",
        st.forfeited(),
        st.forfeited_pruned,
        st.forfeited_cascade,
        st.forfeited_shed
    );
    println!(
        "\nEvery stage reached exactly one fate (injected {} + merged {} + forfeited {} = {}\n\
         stages) — the coordinator's conservation invariant, checked live by `audit()`.",
        st.injected,
        st.merged,
        st.forfeited(),
        st.nodes
    );
}
