//! Deterministic telemetry across all three execution layers.
//!
//! One [`Telemetry`] pipeline observes a closed-world trial, a
//! checkpointed serving fleet and a DAG coordinator — counters, lifecycle
//! spans, time-series samples, a bounded flight recorder — and exports
//! everything as JSONL plus a Prometheus-style text snapshot. Every
//! timestamp is a virtual tick: the pipeline never reads the wall clock,
//! so the JSONL written to `target/telemetry.jsonl` is byte-identical
//! across runs (CI re-parses it and checks the rollup record against
//! `target/telemetry_trial.json`).
//!
//! The rollup is not a second bookkeeping system: the stream-reconstructed
//! [`TrialResult`] is asserted equal to the engine's own — attaching
//! telemetry changes nothing, and *not* attaching costs nothing.
//!
//! ```sh
//! cargo run --release --example telemetry            # full demo scale
//! cargo run --release --example telemetry -- --quick  # seconds-scale smoke
//! ```

use taskdrop::prelude::*;
use taskdrop::workload::graphgen;

fn main() {
    let scale = taskdrop::demo::scale_from_args();
    let scenario = Scenario::specint(42);
    let dropper = ProactiveDropper::paper_default();
    let config = taskdrop::demo::scaled_config(scale);
    let tel = Telemetry::new().with_sample_every(if scale < 1.0 { 200 } else { 500 });

    // ---- part 1: closed-world trial, full instrumentation ----------------
    let tasks = ((1_200.0 * scale).round() as usize).max(60);
    let window = ((7_000.0 * scale).round() as u64).max(600);
    let level = OversubscriptionLevel::new("demo", tasks, window);
    let workload = Workload::generate(&scenario, &level, 1.0, 17);
    println!("instrumented trial on `{}`: {} tasks over {} ticks\n", scenario.name, tasks, window);

    let mut core = SimCore::new(&scenario, &workload, &taskdrop::sched::Pam, &dropper, config, 17)
        .expect("valid configuration");
    tel.attach(&mut core, "trial");
    let mut steps = 0u64;
    loop {
        let outcome = core.step();
        steps += 1;
        if steps % 64 == 0 {
            tel.sample_core(&core, "trial");
        }
        if outcome.is_drained() {
            break;
        }
    }
    tel.sample_core(&core, "trial");

    let trial = tel.finish_scope("trial").expect("drained");
    let engine = core.result().expect("drained");
    assert_eq!(trial, engine, "the telemetry rollup must equal the engine's own accounting");
    println!(
        "rollup == engine result: {:.1} % robustness | {} proactive drops | conserved {}",
        trial.robustness_pct(),
        trial.dropped_proactive,
        trial.is_conserved()
    );
    println!(
        "stream captured {} lifecycle spans, {} time-series samples; mean turnaround {} ticks",
        tel.spans_emitted(),
        tel.series_len(),
        tel.with_registry(|reg| {
            let h = reg.histogram("task_turnaround_ticks", &[("scope", "trial")]);
            h.map_or(0, |h| if h.count() == 0 { 0 } else { h.sum() / h.count() })
        }),
    );

    // ---- part 2: serving fleet with a flight recorder --------------------
    let (epoch, checkpoint_every, bursty_total, diurnal_total) =
        if scale < 1.0 { (120, 480, 220, 140) } else { (500, 2_000, 2_000, 1_200) };
    let bursty =
        TrafficSource::Bursty(BurstySource::new(21, 0.55, 0.0, 400, 300, 300, 12, bursty_total));
    let diurnal = TrafficSource::Diurnal(DiurnalSource::new(
        33,
        0.12,
        0.9,
        6 * epoch,
        400,
        12,
        diurnal_total,
    ));
    let serve_config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    let mut driver =
        ServiceDriver::new().with_checkpoint_every(checkpoint_every).with_telemetry(&tel);
    driver.add_shard(
        Shard::new(
            "flash-crowd",
            &scenario,
            &taskdrop::sched::Pam,
            &dropper,
            serve_config,
            7,
            bursty,
            AdmissionController::new(32, BackpressurePolicy::PreDrop { threshold: 0.2 }),
        )
        .expect("valid shard config"),
    );
    driver.add_shard(
        Shard::new(
            "steady-web",
            &scenario,
            &taskdrop::sched::Pam,
            &dropper,
            serve_config,
            8,
            diurnal,
            AdmissionController::new(24, BackpressurePolicy::ShedOldest),
        )
        .expect("valid shard config"),
    );
    let shard0 = driver.shard_mut(0).expect("shard 0 exists");
    shard0.enable_flight_recorder(48);
    shard0.attach_telemetry(&tel);
    driver.shard_mut(1).expect("shard 1 exists").attach_telemetry(&tel);

    for _ in 0..7 {
        driver.advance(epoch).expect("fleet epoch");
    }
    println!(
        "\nfleet at t={}: backlog flash-crowd={} steady-web={}, {} checkpoints taken",
        driver.clock(),
        tel.gauge("ingress_backlog", &[("shard", "flash-crowd")]).unwrap_or(0.0),
        tel.gauge("ingress_backlog", &[("shard", "steady-web")]).unwrap_or(0.0),
        tel.counter("checkpoints_total", &[("shard", "flash-crowd")])
            + tel.counter("checkpoints_total", &[("shard", "steady-web")]),
    );

    // Kill the instrumented shard; its flight recorder survives as the
    // post-mortem of the timeline that was destroyed.
    let revived_at = driver.kill_and_restore(0).expect("checkpoint exists by now");
    let post_mortem = driver.shards()[0].post_mortem().expect("recorder was enabled");
    println!(
        "killed `flash-crowd` at t={} (revived from t={revived_at}); post-mortem holds the\n\
         last {} events of the destroyed timeline, ending with:",
        driver.clock(),
        post_mortem.events.len(),
    );
    for ev in post_mortem.events.iter().rev().take(3).rev() {
        println!("  {ev:?}");
    }

    driver.run_until_idle(epoch, 10_000).expect("drain");
    assert!(driver.is_idle(), "fleet failed to drain");
    println!("\nfleet drained; cumulative admission verdicts from the registry:");
    for shard in ["flash-crowd", "steady-web"] {
        let label = [("shard", shard)];
        println!(
            "  {:<12} offered {:>5}  admitted {:>5}  turned away {:>4}",
            shard,
            tel.counter("admission_offered_total", &label),
            tel.counter("admission_admitted_total", &label),
            tel.counter("admission_turned_away_total", &label),
        );
    }

    // ---- part 3: DAG layer rates -----------------------------------------
    let mut dag_core = SimCore::open(&scenario, &taskdrop::sched::Pam, &dropper, serve_config, 7)
        .expect("valid configuration");
    let tap = DagTap::new();
    tap.attach(&mut dag_core);
    tel.attach_counters(&mut dag_core, "dag");
    let mut coord = DagCoordinator::new();
    let types = scenario.task_type_count() as u16;
    for bp in [
        graphgen::linear_chain(5, 0, 6, types, 2_500),
        graphgen::fan_out_fan_in(9, 50, 4, types, 2_500),
    ] {
        let graph = TaskGraph::from_blueprint(&bp).expect("generated blueprints are valid");
        coord.add_graph(&mut dag_core, graph).expect("graphs injected at the live clock");
    }
    coord.run_to_drain(&mut dag_core, &tap).expect("dag drain");
    coord.record_telemetry(&tel, "dag", dag_core.now());
    let dag_stats = coord.stats();
    println!(
        "\ndag layer: {} nodes released, {} merged, {} forfeited (cascade {})",
        tel.counter("dag_released_total", &[("scope", "dag")]),
        tel.counter("dag_merged_total", &[("scope", "dag")]),
        dag_stats.forfeited(),
        tel.counter("dag_forfeited_total", &[("scope", "dag"), ("kind", "cascade")]),
    );

    // ---- exporters --------------------------------------------------------
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/telemetry.jsonl", tel.jsonl()).expect("write JSONL export");
    std::fs::write(
        "target/telemetry_trial.json",
        serde_json::to_string(&trial).expect("TrialResult serializes"),
    )
    .expect("write trial result");
    let prom = tel.prometheus();
    println!(
        "\nwrote target/telemetry.jsonl ({} records) and target/telemetry_trial.json;\n\
         Prometheus snapshot ({} lines), head:",
        tel.jsonl().lines().count(),
        prom.lines().count(),
    );
    for line in prom.lines().take(12) {
        println!("  {line}");
    }
    println!(
        "\nEvery record above is stamped with virtual ticks only — re-running this\n\
         binary reproduces the JSONL byte for byte, and detaching the pipeline\n\
         leaves the engine's own numbers untouched."
    );
}
