//! Checkpointed multi-shard serving with live load shedding.
//!
//! This drives the engine the way the paper's mechanism is meant to be
//! deployed: as a *service*. A [`ServiceDriver`] multiplexes two tenant
//! shards against one virtual clock:
//!
//! * `flash-crowd` — a Markov-modulated **bursty** source behind a bounded
//!   ingress queue with the **probabilistic pre-drop** policy: once the
//!   queue is half full, any offer whose completion-PMF chance of success
//!   (Eq 1 + Eq 2 over the live queue tails) falls below a threshold is
//!   refused at the front door;
//! * `steady-web` — a **diurnal** sinusoidal source behind a shed-oldest
//!   ingress queue.
//!
//! The driver checkpoints every shard periodically. Mid-run, this example
//! *kills* the bursty shard — discarding its entire live state — and
//! revives it from the last checkpoint; the driver replays the missed
//! epochs and the shard rejoins the fleet byte-identical to the state that
//! was destroyed (verified against an undisturbed control fleet at the
//! end).
//!
//! ```sh
//! cargo run --release --example service_loop            # full demo scale
//! cargo run --release --example service_loop -- --quick  # seconds-scale smoke
//! ```

use std::cell::RefCell;
use taskdrop::prelude::*;

/// Scale-dependent knobs. `--quick` is a separately tuned small preset
/// (not a naive scale-down): backpressure only engages when bursts span
/// several epochs, so the epoch and ingress bound shrink with the load.
struct Preset {
    epoch: u64,
    checkpoint_every: u64,
    bursty_total: u64,
    bursty_ingress: usize,
    diurnal_total: u64,
    diurnal_ingress: usize,
    slack: u64,
}

fn preset() -> Preset {
    if taskdrop::demo::scale_from_args() < 1.0 {
        Preset {
            epoch: 120,
            checkpoint_every: 480,
            bursty_total: 260,
            bursty_ingress: 36,
            diurnal_total: 160,
            diurnal_ingress: 24,
            slack: 250,
        }
    } else {
        Preset {
            epoch: 500,
            checkpoint_every: 2_000,
            bursty_total: 2_400,
            bursty_ingress: 150,
            diurnal_total: 1_600,
            diurnal_ingress: 64,
            slack: 350,
        }
    }
}

/// Assembles the two-shard fleet (used for both the live and control runs).
fn fleet<'a>(
    p: &Preset,
    scenario: &'a Scenario,
    dropper: &'a taskdrop::core::ProactiveDropper,
) -> ServiceDriver<'a> {
    let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
    // A flash crowd at ~6x the cluster's effective service rate, with
    // silences short enough that the next burst lands on a still-loaded
    // cluster — exactly when the pre-drop gate should earn its keep.
    let bursty = TrafficSource::Bursty(BurstySource::new(
        21,
        0.55,
        0.0,
        400,
        300,
        p.slack,
        12,
        p.bursty_total,
    ));
    let diurnal = TrafficSource::Diurnal(DiurnalSource::new(
        33,
        0.12,
        0.9,
        6 * p.epoch,
        p.slack + 100,
        12,
        p.diurnal_total,
    ));
    let mut driver = ServiceDriver::new().with_checkpoint_every(p.checkpoint_every);
    driver.add_shard(
        Shard::new(
            "flash-crowd",
            scenario,
            &taskdrop::sched::Pam,
            dropper,
            config,
            7,
            bursty,
            AdmissionController::new(
                p.bursty_ingress,
                BackpressurePolicy::PreDrop { threshold: 0.2 },
            ),
        )
        .expect("valid shard config"),
    );
    driver.add_shard(
        Shard::new(
            "steady-web",
            scenario,
            &taskdrop::sched::Pam,
            dropper,
            config,
            8,
            diurnal,
            AdmissionController::new(p.diurnal_ingress, BackpressurePolicy::ShedOldest),
        )
        .expect("valid shard config"),
    );
    driver
}

fn main() {
    let p = preset();
    let scenario = Scenario::specint(42);
    let dropper = taskdrop::core::ProactiveDropper::paper_default();

    println!(
        "two-tenant serving fleet on `{}`: epoch {}, checkpoints every {} ticks\n",
        scenario.name, p.epoch, p.checkpoint_every
    );

    // ---- the live fleet, with an observer on the bursty shard ------------
    let live_predrops = RefCell::new(0u64);
    let mut driver = fleet(&p, &scenario, &dropper);
    driver.shard_mut(0).expect("shard 0 exists").attach(|ev: &SimEvent| {
        if let SimEvent::AdmissionDropped { kind: AdmissionDropKind::PreDropped, .. } = *ev {
            *live_predrops.borrow_mut() += 1;
        }
    });

    // Serve 9 epochs, narrating the pressure building up.
    for round in 1..=9u64 {
        driver.advance(p.epoch).expect("fleet epoch");
        if round % 3 == 0 {
            for shard in driver.shards() {
                let stats = shard.admission().stats();
                println!(
                    "t={:>6} {:<12} offered {:>5}  admitted {:>5}  pre-dropped {:>4}  rejected {:>4}  shed {:>4}  resolved {:>5}",
                    driver.clock(),
                    shard.name(),
                    stats.offered,
                    stats.admitted,
                    stats.pre_dropped,
                    stats.rejected_full,
                    stats.shed_oldest,
                    shard.core().resolved_tasks(),
                );
            }
        }
    }
    println!(
        "\nobserver streamed {} AdmissionDropped/PreDropped events live so far",
        live_predrops.borrow()
    );

    // ---- kill the bursty shard mid-flight and revive it ------------------
    let before = format!("{:?}", driver.shards()[0]);
    let revived_at = driver.kill_and_restore(0).expect("checkpoint exists by now");
    let after = format!("{:?}", driver.shards()[0]);
    assert_eq!(before, after, "catch-up replay must rebuild the exact shard state");
    println!(
        "\nkilled `flash-crowd` at t={} and revived it from the t={revived_at} checkpoint;\n\
         the driver replayed the missed epochs — shard state after catch-up matches what\n\
         was destroyed: {after}\n",
        driver.clock(),
    );

    // ---- drain both fleets and prove the kill changed nothing ------------
    driver.run_until_idle(p.epoch, 10_000).expect("drain");
    assert!(driver.is_idle(), "fleet failed to drain");

    let mut control = fleet(&p, &scenario, &dropper);
    control.run_until_idle(p.epoch, 10_000).expect("control drain");
    assert!(control.is_idle());

    println!("final per-shard outcomes (disturbed fleet == undisturbed control):");
    for (shard, control_shard) in driver.shards().iter().zip(control.shards()) {
        let result = shard.core().result().expect("idle implies drained");
        let control_result = control_shard.core().result().expect("drained");
        assert_eq!(result, control_result, "kill/restore must be invisible in the final metrics");
        assert_eq!(shard.admission().stats(), control_shard.admission().stats());
        let stats = shard.admission().stats();
        println!(
            "  {:<12} {:>5} offered | {:>5} admitted, {:>4} pre-dropped, {:>4} rejected, {:>4} shed, {:>3} expired | robustness {:>5.1} % | conserved {}",
            shard.name(),
            stats.offered,
            stats.admitted,
            stats.pre_dropped,
            stats.rejected_full,
            stats.shed_oldest,
            stats.expired,
            result.robustness_pct(),
            result.is_conserved(),
        );
    }
    let bursty_stats = driver.shards()[0].admission().stats();
    assert!(bursty_stats.pre_dropped > 0, "the bursty shard must exercise backpressure pre-drops");
    println!("\nper-shard evaluator cache performance:");
    for shard in driver.shards() {
        println!("  {:<12} {}", shard.name(), shard.core().cache_stats());
    }
    println!(
        "\nEvery refusal above happened *before* injection — the paper's completion-PMF\n\
         threshold applied at the front door — while the in-core dropper kept pruning\n\
         the machine queues behind it. Checkpoint/restore made a shard kill invisible."
    );
}
