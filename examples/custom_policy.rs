//! Extending the system: plug in your own mapping heuristic and dropping
//! policy.
//!
//! The simulator only knows the two traits
//! [`MappingHeuristic`](taskdrop::sched::MappingHeuristic) and
//! [`DropPolicy`](taskdrop::core::DropPolicy); everything in the paper's
//! evaluation is an implementation of one of them. This example adds
//!
//! * `RoundRobin` — a deliberately mapping-blind heuristic that deals tasks
//!   to machines in turn, ignoring the PET matrix entirely; and
//! * `PanicThreshold` — a naive dropper that discards any queued task whose
//!   chance of success falls below 5 %, with no influence-zone reasoning;
//!
//! and shows that even a blind mapper becomes competitive once the paper's
//! autonomous proactive dropper cleans up behind it.
//!
//! ```sh
//! cargo run --release --example custom_policy            # full scale
//! cargo run --release --example custom_policy -- --quick  # smoke scale
//! ```

use taskdrop::model::queue::ChainTask;
use taskdrop::prelude::*;

/// Deals unmapped tasks to machines in round-robin order, one per free slot,
/// ignoring execution times, deadlines and chances alike.
struct RoundRobin;

impl MappingHeuristic for RoundRobin {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn map(&self, input: MappingInput<'_>, _scratch: &mut PolicyCtx) -> Vec<Assignment> {
        let mut free: Vec<(usize, usize)> =
            input.machines.iter().enumerate().map(|(mi, m)| (mi, m.free_slots)).collect();
        let mut out = Vec::new();
        let mut mi = 0usize;
        for task_idx in 0..input.unmapped.len() {
            // Find the next machine with a free slot, cycling.
            let mut scanned = 0;
            while scanned < free.len() && free[mi].1 == 0 {
                mi = (mi + 1) % free.len();
                scanned += 1;
            }
            if free[mi].1 == 0 {
                break; // everything full
            }
            out.push(Assignment { task_idx, machine: input.machines[free[mi].0].machine });
            free[mi].1 -= 1;
            mi = (mi + 1) % free.len();
        }
        out
    }
}

/// Drops every queued task whose chance of success is below 5 % — no
/// influence-zone analysis, no autonomy; shown for contrast.
struct PanicThreshold;

impl DropPolicy for PanicThreshold {
    fn name(&self) -> &'static str {
        "Panic5"
    }

    fn select_drops(
        &self,
        queue: &QueueView<'_>,
        ctx: &DropContext,
        scratch: &mut PolicyCtx,
    ) -> DropDecision {
        // The engine-provided scratch keeps even a custom policy
        // allocation-free: the fused evaluator's buffers persist across
        // mapping events.
        let tasks: Vec<ChainTask<'_>> = queue.chain_tasks();
        let links = scratch.eval.chain(&queue.base(), &tasks, ctx.compaction);
        DropDecision::drops(
            links.iter().enumerate().filter(|(_, l)| l.chance < 0.05).map(|(i, _)| i).collect(),
        )
    }
}

fn main() {
    let scale = taskdrop::demo::scale_from_args();
    let scenario = Scenario::specint(0xA5);
    let level = OversubscriptionLevel::new("demo", 3_000, 16_000).scaled(scale);
    let workload = Workload::generate(&scenario, &level, 1.0, 3);
    let config = taskdrop::demo::scaled_config(scale);

    let mappers: Vec<(&str, Box<dyn MappingHeuristic>)> =
        vec![("RoundRobin (custom)", Box::new(RoundRobin)), ("PAM (paper)", Box::new(Pam))];
    let droppers: Vec<(&str, Box<dyn DropPolicy>)> = vec![
        ("ReactiveOnly", Box::new(ReactiveOnly)),
        ("Panic5 (custom)", Box::new(PanicThreshold)),
        ("Proactive (paper)", Box::new(ProactiveDropper::paper_default())),
    ];

    println!("robustness (% on time) on one {}-task workload:\n", workload.len());
    print!("{:<22}", "");
    for (dname, _) in &droppers {
        print!("{dname:>20}");
    }
    println!();
    for (mname, mapper) in &mappers {
        print!("{mname:<22}");
        for (_, dropper) in &droppers {
            let r =
                Simulation::new(&scenario, &workload, mapper.as_ref(), dropper.as_ref(), config, 1)
                    .run();
            print!("{:>19.1}%", r.robustness_pct());
        }
        println!();
    }

    println!(
        "\nThe autonomous proactive dropper lifts every mapper — even the\n\
         PET-blind RoundRobin improves substantially — and beats the naive\n\
         fixed-threshold dropper across the board. (Unlike the paper's\n\
         MSD/MM/PAM equalisation in Section V-E, a mapper that sends task\n\
         types to their slowest machines wastes capacity no dropper can\n\
         recover: dropping forgives poor *ordering*, not poor *placement*.)"
    );
}
