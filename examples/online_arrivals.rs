//! Online arrivals: drive the resumable [`SimCore`] as a live system.
//!
//! The paper frames dropping as an *online* decision made at each mapping
//! event — tasks are not known up front. This example runs the engine the
//! way a production front-end would: an open-world [`SimCore`] receives
//! tasks through [`SimCore::inject`] in bursts while the trial is in
//! flight, a streaming observer prints drop decisions the moment the
//! policy makes them, and the driver advances time slice by slice with
//! [`SimCore::run_until`], peeking at queue state between slices.
//!
//! ```sh
//! cargo run --release --example online_arrivals            # full demo scale
//! cargo run --release --example online_arrivals -- --quick  # seconds-scale smoke
//! ```

use std::cell::RefCell;
use taskdrop::prelude::*;
use taskdrop::stats::{derive_seed, new_rng, PoissonProcess};

/// Live tallies kept by the streaming observer.
#[derive(Default)]
struct Tally {
    mapped: usize,
    started: usize,
    completed: usize,
    dropped_proactive: usize,
    dropped_reactive: usize,
    killed: usize,
    printed: usize,
}

fn main() {
    let scale = taskdrop::demo::scale_from_args();
    let scenario = Scenario::specint(42);
    let config = taskdrop::demo::scaled_config(scale);
    let dropper = ProactiveDropper::paper_default();

    // ~2x-oversubscribed arrival stream, fed to the core in live bursts.
    let total_tasks = ((2_000.0 * scale).round() as usize).max(40);
    let window = (11_000.0 * scale).round() as u64;
    let rate = total_tasks as f64 / window as f64;
    println!(
        "open-world SimCore on `{}`: {} tasks arriving live at {:.0} tasks/s\n",
        scenario.name,
        total_tasks,
        rate * 1000.0
    );

    // The observer sees every decision as it happens. The first few drops
    // are shown verbatim; the rest only move the tallies.
    const SHOWN: usize = 10;
    let tally = RefCell::new(Tally::default());
    let mut core =
        SimCore::open(&scenario, &Pam, &dropper, config, 1).expect("valid configuration");
    core.attach(|ev: &SimEvent| {
        let mut t = tally.borrow_mut();
        match *ev {
            SimEvent::Mapped { .. } => t.mapped += 1,
            SimEvent::Started { .. } => t.started += 1,
            SimEvent::Completed { .. } => t.completed += 1,
            SimEvent::Killed { task, now, .. } => {
                t.killed += 1;
                if t.printed < SHOWN {
                    t.printed += 1;
                    println!("  [{now:>6}] kill  {task}: deadline passed while running");
                }
            }
            SimEvent::Dropped { task, now, kind } => match kind {
                DropKind::Proactive => {
                    t.dropped_proactive += 1;
                    if t.printed < SHOWN {
                        t.printed += 1;
                        println!(
                            "  [{now:>6}] drop  {task}: policy sacrificed it to raise queue robustness"
                        );
                    }
                }
                DropKind::Reactive => {
                    t.dropped_reactive += 1;
                    if t.printed < SHOWN {
                        t.printed += 1;
                        println!("  [{now:>6}] drop  {task}: expired while waiting");
                    }
                }
            },
            _ => {}
        }
    });

    // Pre-draw the arrival stream (Poisson) but reveal it to the core only
    // burst by burst — the engine never sees the future.
    let mut rng = new_rng(derive_seed(7, 0xA331));
    let arrivals = PoissonProcess::new(rate).arrival_ticks(&mut rng, total_tasks);
    // Task types cycle through a seed-mixed permutation of the catalogue.
    let type_of = |i: usize| {
        ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % scenario.task_type_count()
    };
    let slack = 450u64.max(window / 20);

    let slices = 8u64;
    let mut fed = 0usize;
    for slice in 1..=slices {
        let horizon = window * slice / slices;
        while fed < total_tasks && arrivals[fed] <= horizon {
            let arrival = arrivals[fed];
            core.inject(TaskTypeId(type_of(fed) as u16), arrival, arrival + slack)
                .expect("arrivals are injected in order");
            fed += 1;
        }
        core.run_until(horizon);
        let st = core.state();
        let queued: usize = st.machines.iter().map(|m| m.pending.len()).sum();
        let running = st.machines.iter().filter(|m| m.running.is_some()).count();
        println!(
            "t={:>6}: injected {:>4}/{total_tasks}, resolved {:>4}, batch {:>3}, queued {queued:>2}, running {running}",
            st.now, fed, st.resolved_tasks, st.batch.len()
        );
    }

    // Poisson gaps can push the last few arrivals past `window`; feed the
    // stragglers too so the trial really carries every announced task.
    while fed < total_tasks {
        let arrival = arrivals[fed];
        core.inject(TaskTypeId(type_of(fed) as u16), arrival, arrival + slack)
            .expect("arrivals are injected in order");
        fed += 1;
    }

    let result = core.run_to_completion();
    let t = tally.borrow();
    println!("\ndrained at t={} after {} mapping events", result.makespan, result.mapping_events);
    println!(
        "observer saw: {} mapped, {} started, {} completed, {} proactive drops, {} reactive drops, {} kills",
        t.mapped, t.started, t.completed, t.dropped_proactive, t.dropped_reactive, t.killed
    );
    // (Result counts exclude the configured boundary tasks, so they can sit
    // slightly below the observer's whole-trial tallies.)
    println!(
        "result:       {:.1} % robustness | drops {} proactive / {} reactive | conserved: {}",
        result.robustness_pct(),
        result.dropped_proactive,
        result.dropped_reactive,
        result.is_conserved()
    );
    println!(
        "\nEvery number above was available *while the trial ran* — the batch\n\
         Simulation::run() API only reveals the final line."
    );
}
