//! Quickstart: simulate an oversubscribed heterogeneous system and see what
//! autonomous proactive task dropping buys you.
//!
//! ```sh
//! cargo run --release --example quickstart          # full demo scale
//! cargo run --release --example quickstart -- --quick  # seconds-scale smoke
//! ```

use taskdrop::prelude::*;

fn main() {
    let scale = taskdrop::demo::scale_from_args();
    // The paper's main scenario: 12 SPECint task types on 8 heterogeneous
    // machines. One seed builds the whole environment: the true Gamma
    // execution-time model and the PET matrix learned from 500 samples/cell.
    let scenario = Scenario::specint(42);
    println!(
        "scenario `{}`: {} task types x {} machines (PET inconsistency {:.2})",
        scenario.name,
        scenario.task_type_count(),
        scenario.machine_count(),
        scenario.pet.inconsistency()
    );

    // A 2x-oversubscribed workload: more tasks than the machines can finish.
    let level = OversubscriptionLevel::new("demo", 4_000, 22_000).scaled(scale);
    let workload = Workload::generate(&scenario, &level, 1.0, 7);
    println!(
        "workload: {} tasks over {} ms (rate {:.0} tasks/s)\n",
        workload.len(),
        level.window,
        level.rate() * 1000.0
    );

    // Same workload, same realised execution times, two dropping policies.
    let config = taskdrop::demo::scaled_config(scale);
    let reactive = ReactiveOnly;
    let proactive = ProactiveDropper::paper_default(); // beta = 1, eta = 2

    let baseline = Simulation::new(&scenario, &workload, &Pam, &reactive, config, 1).run();
    let dropping = Simulation::new(&scenario, &workload, &Pam, &proactive, config, 1).run();

    for (name, r) in [("PAM + reactive only", &baseline), ("PAM + proactive dropping", &dropping)] {
        println!("{name}:");
        println!("  robustness:       {:>6.2} % of tasks completed on time", r.robustness_pct());
        println!("  late completions: {:>6}", r.late);
        println!(
            "  drops:            {:>6} reactive, {} proactive",
            r.dropped_reactive, r.dropped_proactive
        );
        println!(
            "  cost:             {:>9.4} $ ({:.4} $ per robustness point)\n",
            r.cost_dollars,
            r.cost_per_robustness()
        );
    }

    let gain = dropping.robustness_pct() - baseline.robustness_pct();
    println!("proactive dropping gained {gain:.1} robustness points on this workload");
}
