//! One fluent, serialisable entry point for a whole experiment.
//!
//! Running a paper-style experiment used to take five separately constructed
//! pieces — a [`Scenario`], an [`OversubscriptionLevel`], a gamma for
//! [`Workload::generate`](taskdrop_workload::Workload::generate), a
//! [`RunSpec`], and a [`TrialRunner`] — wired together by hand in every
//! binary. [`ExperimentBuilder`] chains all of it:
//!
//! ```
//! use taskdrop::experiment::ExperimentBuilder;
//! use taskdrop::prelude::*;
//!
//! let report = ExperimentBuilder::specint(0xA5)
//!     .level("30k", 600, 3_240)
//!     .gamma(1.0)
//!     .mapper(HeuristicKind::Pam)
//!     .dropper(DropperKind::heuristic_default())
//!     .trials(3)
//!     .master_seed(0x0808)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.trials.len(), 3);
//! ```
//!
//! The builder's [`build`](ExperimentBuilder::build) output is an
//! [`ExperimentSpec`]: a plain serde-round-trippable value capturing the
//! *entire* experiment (scenario seed included), so a JSON file can name
//! everything a figure needs and [`ExperimentSpec::run`] reproduces it
//! bit-for-bit. Every grid cell of the seven `fig*` binaries is expressible
//! this way (asserted by `tests/experiment_builder.rs`).

use serde::{Deserialize, Serialize};
use taskdrop_model::ApproxSpec;
use taskdrop_pmf::Tick;
use taskdrop_sched::HeuristicKind;
use taskdrop_sim::{
    DropperKind, FailureSpec, RunSpec, SimConfig, SimError, SimReport, TrialRunner,
};
use taskdrop_workload::{OversubscriptionLevel, Scenario, SPECINT_WINDOW};

/// A scenario named by generator + seed, so experiment files stay
/// self-contained and reproducible (the generators are deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioSpec {
    /// The paper's main set-up: 12 SPECint task types × 8 heterogeneous
    /// machines ([`Scenario::specint`]).
    Specint {
        /// Scenario seed (truth model + learned PET).
        seed: u64,
    },
    /// The validation set-up: 4 transcoding task types × 4 VM types, two
    /// machines each ([`Scenario::transcode`]).
    Transcode {
        /// Scenario seed.
        seed: u64,
    },
    /// The homogeneous control: 8 identical machines
    /// ([`Scenario::homogeneous`]).
    Homogeneous {
        /// Scenario seed.
        seed: u64,
    },
}

impl ScenarioSpec {
    /// Builds the scenario this spec names.
    #[must_use]
    pub fn build(&self) -> Scenario {
        match *self {
            ScenarioSpec::Specint { seed } => Scenario::specint(seed),
            ScenarioSpec::Transcode { seed } => Scenario::transcode(seed),
            ScenarioSpec::Homogeneous { seed } => Scenario::homogeneous(seed),
        }
    }
}

/// A complete, validated, serialisable experiment: scenario + workload
/// intensity + policies + engine config + trial plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Which scenario to generate.
    pub scenario: ScenarioSpec,
    /// Workload intensity (tasks + arrival window).
    pub level: OversubscriptionLevel,
    /// Deadline slack coefficient γ.
    pub gamma: f64,
    /// Mapping heuristic.
    pub mapper: HeuristicKind,
    /// Dropping policy.
    pub dropper: DropperKind,
    /// Engine configuration.
    pub config: SimConfig,
    /// Number of trials (the paper uses 30).
    pub trials: usize,
    /// Master seed; trial *k* derives its own workload and execution seeds.
    pub master_seed: u64,
    /// Worker threads; 0 means use all available cores.
    pub threads: usize,
}

impl ExperimentSpec {
    /// The per-trial [`RunSpec`] this experiment repeats — what the figure
    /// binaries hand to [`TrialRunner::run`].
    #[must_use]
    pub fn run_spec(&self) -> RunSpec {
        RunSpec {
            level: self.level.clone(),
            gamma: self.gamma,
            mapper: self.mapper,
            dropper: self.dropper,
            config: self.config,
        }
    }

    /// The trial plan.
    #[must_use]
    pub fn runner(&self) -> TrialRunner {
        TrialRunner { trials: self.trials, master_seed: self.master_seed, threads: self.threads }
    }

    /// Generates the scenario and runs every trial.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from [`TrialRunner::try_run`].
    pub fn run(&self) -> Result<SimReport, SimError> {
        self.run_on(&self.scenario.build())
    }

    /// Runs against an already-built scenario (sharing one scenario across
    /// many specs skips the repeated PET learning).
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from [`TrialRunner::try_run`].
    pub fn run_on(&self, scenario: &Scenario) -> Result<SimReport, SimError> {
        self.runner().try_run(scenario, &self.run_spec())
    }
}

/// Fluent construction of an [`ExperimentSpec`].
///
/// Defaults mirror the figure harness: the SPECint scenario, the 30k paper
/// level at the calibrated window, γ = 1.0, PAM + the paper-default
/// heuristic dropper, [`SimConfig::default`], 30 trials, master seed 0, all
/// cores.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentBuilder {
    spec: ExperimentSpec,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            spec: ExperimentSpec {
                scenario: ScenarioSpec::Specint { seed: 0xA5 },
                level: OversubscriptionLevel::new("30k", 30_000, SPECINT_WINDOW),
                gamma: 1.0,
                mapper: HeuristicKind::Pam,
                dropper: DropperKind::heuristic_default(),
                config: SimConfig::default(),
                trials: 30,
                master_seed: 0,
                threads: 0,
            },
        }
    }
}

impl ExperimentBuilder {
    /// Starts from the defaults (see the type-level docs).
    #[must_use]
    pub fn new() -> Self {
        ExperimentBuilder::default()
    }

    /// Starts on the SPECint scenario with the given seed.
    #[must_use]
    pub fn specint(seed: u64) -> Self {
        ExperimentBuilder::new().scenario(ScenarioSpec::Specint { seed })
    }

    /// Starts on the video-transcoding scenario with the given seed.
    #[must_use]
    pub fn transcode(seed: u64) -> Self {
        ExperimentBuilder::new().scenario(ScenarioSpec::Transcode { seed })
    }

    /// Starts on the homogeneous control scenario with the given seed.
    #[must_use]
    pub fn homogeneous(seed: u64) -> Self {
        ExperimentBuilder::new().scenario(ScenarioSpec::Homogeneous { seed })
    }

    /// Sets the scenario.
    #[must_use]
    pub fn scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.spec.scenario = scenario;
        self
    }

    /// Sets the oversubscription level (label, task count, window).
    #[must_use]
    pub fn level(mut self, label: impl Into<String>, tasks: usize, window: Tick) -> Self {
        self.spec.level = OversubscriptionLevel::new(label, tasks, window);
        self
    }

    /// Sets the oversubscription level from an existing value.
    #[must_use]
    pub fn at_level(mut self, level: OversubscriptionLevel) -> Self {
        self.spec.level = level;
        self
    }

    /// Scales the current level's tasks and window together (preserving the
    /// arrival rate), like the figure harness's `--quick`/`--medium` modes.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        self.spec.level = self.spec.level.scaled(factor);
        self
    }

    /// Sets the deadline slack coefficient γ.
    #[must_use]
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.spec.gamma = gamma;
        self
    }

    /// Sets the mapping heuristic.
    #[must_use]
    pub fn mapper(mut self, mapper: HeuristicKind) -> Self {
        self.spec.mapper = mapper;
        self
    }

    /// Sets the dropping policy.
    #[must_use]
    pub fn dropper(mut self, dropper: DropperKind) -> Self {
        self.spec.dropper = dropper;
        self
    }

    /// Replaces the whole engine configuration.
    #[must_use]
    pub fn config(mut self, config: SimConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// Sets the machine-queue capacity (including the running task).
    #[must_use]
    pub fn queue_size(mut self, queue_size: usize) -> Self {
        self.spec.config.queue_size = queue_size;
        self
    }

    /// Sets the metric exclusion boundary (tasks ignored at each end).
    #[must_use]
    pub fn exclude_boundary(mut self, exclude_boundary: usize) -> Self {
        self.spec.config.exclude_boundary = exclude_boundary;
        self
    }

    /// Enables or disables killing the running task at its deadline.
    #[must_use]
    pub fn kill_running_at_deadline(mut self, kill: bool) -> Self {
        self.spec.config.kill_running_at_deadline = kill;
        self
    }

    /// Enables machine failure injection.
    #[must_use]
    pub fn failures(mut self, failures: FailureSpec) -> Self {
        self.spec.config.failures = Some(failures);
        self
    }

    /// Enables approximate computing (degrade instead of drop).
    #[must_use]
    pub fn approx(mut self, approx: ApproxSpec) -> Self {
        self.spec.config.approx = Some(approx);
        self
    }

    /// Sets the number of trials.
    #[must_use]
    pub fn trials(mut self, trials: usize) -> Self {
        self.spec.trials = trials;
        self
    }

    /// Sets the master seed the per-trial seeds derive from.
    #[must_use]
    pub fn master_seed(mut self, master_seed: u64) -> Self {
        self.spec.master_seed = master_seed;
        self
    }

    /// Sets the worker-thread count (0 = all cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.spec.threads = threads;
        self
    }

    /// Validates and returns the finished [`ExperimentSpec`].
    ///
    /// # Errors
    ///
    /// Any error from [`TrialRunner::validate`] — [`SimError::ZeroTrials`],
    /// [`SimError::InvalidGamma`], or a config error from
    /// [`SimConfig::validate`].
    pub fn build(self) -> Result<ExperimentSpec, SimError> {
        self.spec.runner().validate(&self.spec.run_spec())?;
        Ok(self.spec)
    }

    /// Builds and runs the experiment in one call.
    ///
    /// # Errors
    ///
    /// Any error from [`ExperimentBuilder::build`] or
    /// [`TrialRunner::try_run`].
    pub fn run(self) -> Result<SimReport, SimError> {
        self.build()?.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_figure_harness() {
        let spec = ExperimentBuilder::new().build().unwrap();
        assert_eq!(spec.scenario, ScenarioSpec::Specint { seed: 0xA5 });
        assert_eq!(spec.level.label, "30k");
        assert_eq!(spec.trials, 30);
        assert_eq!(spec.config, SimConfig::default());
    }

    #[test]
    fn builder_validates() {
        assert_eq!(ExperimentBuilder::new().trials(0).build().err(), Some(SimError::ZeroTrials));
        assert_eq!(
            ExperimentBuilder::new().gamma(f64::NAN).build().err(),
            Some(SimError::InvalidGamma)
        );
        assert_eq!(
            ExperimentBuilder::new().queue_size(0).build().err(),
            Some(SimError::ZeroQueueSize)
        );
    }

    #[test]
    fn scaled_preserves_rate() {
        let spec = ExperimentBuilder::new().level("x", 1_000, 10_000).scaled(0.1).build().unwrap();
        assert_eq!(spec.level.tasks, 100);
        assert_eq!(spec.level.window, 1_000);
    }

    #[test]
    fn scenario_specs_build_their_generators() {
        assert_eq!(ScenarioSpec::Specint { seed: 3 }.build().name, "specint");
        assert_eq!(ScenarioSpec::Transcode { seed: 3 }.build().name, "transcode");
        assert_eq!(ScenarioSpec::Homogeneous { seed: 3 }.build().name, "homogeneous");
    }
}
