//! One serialisable entry point for a whole serving session — the
//! streaming counterpart of [`crate::experiment`].
//!
//! An [`ExperimentSpec`](crate::experiment::ExperimentSpec) names a closed
//! batch experiment; a [`ServicePlan`] names an *open* one: a scenario, a
//! fleet of shards (each with its own traffic source, admission policy and
//! engine config), an epoch length, and a checkpoint cadence.
//! [`ServicePlan::run`] owns the whole lifecycle — build the scenario and
//! policies, assemble the [`ServiceDriver`], drive it to idle — and
//! returns a [`ServiceReport`] with per-shard trial results and admission
//! accounting. Because the plan is serde-round-trippable, a JSON file
//! fully describes a streaming scenario (see EXPERIMENTS.md).
//!
//! ```
//! use taskdrop::service::{ServicePlan, ShardPlan};
//! use taskdrop::prelude::*;
//! use taskdrop::workload::{BurstySource, TrafficSource};
//!
//! let plan = ServicePlan {
//!     scenario: ScenarioSpec::Specint { seed: 1 },
//!     epoch: 500,
//!     checkpoint_every: Some(2_000),
//!     max_epochs: 100,
//!     parallel: None,
//!     shards: vec![ShardPlan {
//!         name: "tenant-a".into(),
//!         mapper: HeuristicKind::Pam,
//!         dropper: DropperKind::heuristic_default(),
//!         config: SimConfig { exclude_boundary: 0, ..SimConfig::default() },
//!         exec_seed: 7,
//!         source: TrafficSource::Bursty(BurstySource::new(9, 0.4, 0.0, 300, 700, 400, 12, 50)),
//!         ingress_capacity: 16,
//!         backpressure: BackpressurePolicy::PreDrop { threshold: 0.2 },
//!     }],
//! };
//! let report = plan.run().unwrap();
//! assert!(report.idle);
//! assert!(report.shards[0].result.is_conserved());
//! ```

use crate::experiment::ScenarioSpec;
use serde::{Deserialize, Serialize};
use taskdrop_core::DropPolicy;
use taskdrop_pmf::Tick;
use taskdrop_sched::{HeuristicKind, MappingHeuristic};
use taskdrop_serve::{
    AdmissionController, AdmissionStats, BackpressurePolicy, FleetDriver, FleetShard, ServeError,
    ServiceDriver, Shard, StealPolicy,
};
use taskdrop_sim::{DropperKind, SimConfig, TrialResult};
use taskdrop_workload::TrafficSource;

/// One shard of a [`ServicePlan`]: policies + engine config + traffic
/// source + admission control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Display name (tenant/cluster id).
    pub name: String,
    /// Mapping heuristic.
    pub mapper: HeuristicKind,
    /// Dropping policy.
    pub dropper: DropperKind,
    /// Engine configuration.
    pub config: SimConfig,
    /// Execution-time seed (the shard's "luck").
    pub exec_seed: u64,
    /// The arrival stream.
    pub source: TrafficSource,
    /// Ingress queue bound.
    pub ingress_capacity: usize,
    /// Backpressure policy at the ingress bound.
    pub backpressure: BackpressurePolicy,
}

/// Parallel-fleet execution options for a [`ServicePlan`].
///
/// Absent (`parallel: None`), the plan runs on the serial
/// [`ServiceDriver`]. Present, it runs on the epoch-parallel
/// [`FleetDriver`] — same report either way when `stealing` is off,
/// since the fleet's per-shard trajectories are byte-identical to the
/// serial driver's (and identical at any worker count regardless).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetPlan {
    /// Worker threads for the parallel phase; `None` picks one per
    /// available core. Purely a throughput knob — never observable.
    #[serde(default)]
    pub workers: Option<usize>,
    /// Cross-shard work stealing at epoch barriers, if enabled (switches
    /// ingress to epoch-batched dispatch — see
    /// [`FleetDriver::with_stealing`]).
    #[serde(default)]
    pub stealing: Option<StealPolicy>,
}

/// A complete serving session: scenario + shard fleet + clock discipline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServicePlan {
    /// Which scenario every shard runs on.
    pub scenario: ScenarioSpec,
    /// The shard fleet.
    pub shards: Vec<ShardPlan>,
    /// Epoch length in ticks (the driver's advance quantum).
    pub epoch: Tick,
    /// Periodic checkpoint interval, if any.
    pub checkpoint_every: Option<Tick>,
    /// Epoch budget for [`ServicePlan::run`].
    pub max_epochs: usize,
    /// Parallel-fleet options; `None` (the default, and what plans
    /// serialized by older builds deserialize to) runs serially.
    #[serde(default)]
    pub parallel: Option<FleetPlan>,
}

/// Outcome of one shard after the fleet went idle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// The shard's name.
    pub name: String,
    /// Final trial metrics of everything that was admitted.
    pub result: TrialResult,
    /// Admission accounting (offers turned away never reach `result`).
    pub admission: AdmissionStats,
}

/// Outcome of a [`ServicePlan::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Virtual clock when the run stopped.
    pub clock: Tick,
    /// Epochs actually driven.
    pub epochs: usize,
    /// Whether the fleet fully drained inside the epoch budget.
    pub idle: bool,
    /// Per-shard outcomes, in plan order.
    pub shards: Vec<ShardReport>,
}

impl ServicePlan {
    /// Builds the scenario and policies, assembles the driver, and runs
    /// the fleet to idle (or until `max_epochs`).
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] from shard assembly or driving, or
    /// [`SimError::NotDrained`](taskdrop_sim::SimError::NotDrained)
    /// surfaced through it if the epoch budget ran out with tasks still in
    /// flight (the report's `result` requires a drained core).
    pub fn run(&self) -> Result<ServiceReport, ServeError> {
        let scenario = self.scenario.build();
        let mappers: Vec<Box<dyn MappingHeuristic>> =
            self.shards.iter().map(|s| s.mapper.build()).collect();
        let droppers: Vec<Box<dyn DropPolicy>> =
            self.shards.iter().map(|s| s.dropper.build()).collect();

        if let Some(fleet) = self.parallel {
            return self.run_fleet(&scenario, &mappers, &droppers, fleet);
        }

        let mut driver = match self.checkpoint_every {
            Some(interval) => ServiceDriver::new().with_checkpoint_every(interval),
            None => ServiceDriver::new(),
        };
        for ((plan, mapper), dropper) in self.shards.iter().zip(&mappers).zip(&droppers) {
            driver.add_shard(Shard::new(
                plan.name.clone(),
                &scenario,
                mapper.as_ref(),
                dropper.as_ref(),
                plan.config,
                plan.exec_seed,
                plan.source.clone(),
                AdmissionController::new(plan.ingress_capacity, plan.backpressure),
            )?);
        }
        let epochs = driver.run_until_idle(self.epoch, self.max_epochs)?;
        let idle = driver.is_idle();
        let shards = driver
            .shards()
            .iter()
            .map(|shard| {
                Ok(ShardReport {
                    name: shard.name().to_string(),
                    result: shard.core().result()?,
                    admission: shard.admission().stats(),
                })
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(ServiceReport { clock: driver.clock(), epochs, idle, shards })
    }

    /// The [`FleetDriver`] execution path of [`ServicePlan::run`].
    fn run_fleet(
        &self,
        scenario: &taskdrop_workload::Scenario,
        mappers: &[Box<dyn MappingHeuristic>],
        droppers: &[Box<dyn DropPolicy>],
        fleet: FleetPlan,
    ) -> Result<ServiceReport, ServeError> {
        let mut driver = FleetDriver::new();
        if let Some(workers) = fleet.workers {
            driver = driver.with_workers(workers);
        }
        if let Some(policy) = fleet.stealing {
            driver = driver.with_stealing(policy);
        }
        if let Some(interval) = self.checkpoint_every {
            driver = driver.with_checkpoint_every(interval);
        }
        for ((plan, mapper), dropper) in self.shards.iter().zip(mappers).zip(droppers) {
            driver.add_shard(FleetShard::new(
                plan.name.clone(),
                scenario,
                mapper.as_ref(),
                dropper.as_ref(),
                plan.config,
                plan.exec_seed,
                plan.source.clone(),
                AdmissionController::new(plan.ingress_capacity, plan.backpressure),
            )?);
        }
        let epochs = driver.run_until_idle(self.epoch, self.max_epochs)?;
        let idle = driver.is_idle();
        let shards = driver
            .shards()
            .iter()
            .map(|shard| {
                Ok(ShardReport {
                    name: shard.name().to_string(),
                    result: shard.result()?,
                    admission: shard.admission().stats(),
                })
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        Ok(ServiceReport { clock: driver.clock(), epochs, idle, shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskdrop_workload::{BurstySource, DiurnalSource};

    fn plan() -> ServicePlan {
        let config = SimConfig { exclude_boundary: 0, ..SimConfig::default() };
        ServicePlan {
            scenario: ScenarioSpec::Specint { seed: 11 },
            epoch: 500,
            checkpoint_every: Some(2_000),
            max_epochs: 150,
            parallel: None,
            shards: vec![
                ShardPlan {
                    name: "bursty".into(),
                    mapper: HeuristicKind::Pam,
                    dropper: DropperKind::heuristic_default(),
                    config,
                    exec_seed: 7,
                    source: TrafficSource::Bursty(BurstySource::new(
                        21, 0.5, 0.0, 400, 900, 350, 12, 150,
                    )),
                    ingress_capacity: 24,
                    backpressure: BackpressurePolicy::PreDrop { threshold: 0.2 },
                },
                ShardPlan {
                    name: "diurnal".into(),
                    mapper: HeuristicKind::MinMin,
                    dropper: DropperKind::ReactiveOnly,
                    config,
                    exec_seed: 8,
                    source: TrafficSource::Diurnal(DiurnalSource::new(
                        33, 0.1, 0.9, 3_000, 450, 12, 120,
                    )),
                    ingress_capacity: 16,
                    backpressure: BackpressurePolicy::ShedOldest,
                },
            ],
        }
    }

    #[test]
    fn plan_runs_to_an_idle_conserved_report() {
        let report = plan().run().unwrap();
        assert!(report.idle, "fleet did not drain in {} epochs", report.epochs);
        assert_eq!(report.shards.len(), 2);
        for shard in &report.shards {
            assert!(shard.result.is_conserved(), "{} lost tasks", shard.name);
            assert_eq!(shard.result.total_tasks as u64, shard.admission.admitted);
        }
    }

    #[test]
    fn parallel_plan_without_stealing_matches_the_serial_report() {
        let serial = plan().run().unwrap();
        for workers in [1, 4] {
            let mut parallel = plan();
            parallel.parallel = Some(FleetPlan { workers: Some(workers), stealing: None });
            assert_eq!(
                parallel.run().unwrap(),
                serial,
                "fleet at {workers} workers diverged from the serial driver"
            );
        }
    }

    #[test]
    fn stealing_plan_runs_to_idle_and_balances_the_ledger() {
        let mut p = plan();
        p.parallel = Some(FleetPlan {
            workers: Some(2),
            stealing: Some(StealPolicy { saturation: 0.5, headroom: 0.9, max_per_epoch: 4 }),
        });
        let report = p.run().unwrap();
        assert!(report.idle, "stealing fleet did not drain in {} epochs", report.epochs);
        let stolen_out: u64 = report.shards.iter().map(|s| s.admission.stolen_out).sum();
        let stolen_in: u64 = report.shards.iter().map(|s| s.admission.stolen_in).sum();
        assert_eq!(stolen_out, stolen_in);
        for shard in &report.shards {
            assert!(shard.result.is_conserved(), "{} lost tasks", shard.name);
            assert_eq!(
                shard.admission.offered + shard.admission.stolen_in,
                shard.admission.admitted
                    + shard.admission.turned_away()
                    + shard.admission.stolen_out
            );
        }
        // A plan without the `parallel` field still deserializes (older
        // plan files) and runs serially.
        let legacy = r#"{"scenario":{"Specint":{"seed":11}},"shards":[],"epoch":500,"checkpoint_every":null,"max_epochs":1}"#;
        let p: ServicePlan = serde_json::from_str(legacy).unwrap();
        assert_eq!(p.parallel, None);
    }

    #[test]
    fn plan_and_report_are_serde_round_trippable_and_reproducible() {
        let p = plan();
        let json = serde_json::to_string(&p).unwrap();
        let back: ServicePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        let a = p.run().unwrap();
        let b = back.run().unwrap();
        assert_eq!(a, b, "identical plans must produce identical reports");
    }
}
