//! # taskdrop — autonomous proactive task dropping for robust HC systems
//!
//! Umbrella crate re-exporting the whole `taskdrop` workspace: a
//! production-quality Rust reproduction of
//! *"Autonomous Task Dropping Mechanism to Achieve Robustness in
//! Heterogeneous Computing Systems"* (Mokhtari, Denninnart, Amini Salehi,
//! 2020).
//!
//! See the individual crates for details:
//!
//! * [`pmf`] — discrete PMFs, convolution, the deadline-aware convolution of
//!   the paper's Equation (1).
//! * [`stats`] — seeded samplers (Gamma, Exponential, Normal), Poisson
//!   arrivals, histograms, summary statistics.
//! * [`model`] — tasks, machines, PET matrix, machine-queue completion-time
//!   chains, instantaneous robustness.
//! * [`sched`] — mapping heuristics: MinMin, MSD, PAM, FCFS, EDF, SJF.
//! * [`core`] — the paper's contribution: proactive dropping heuristic,
//!   optimal subset dropping, threshold baseline.
//! * [`workload`] — SPECint-like and video-transcoding scenario generators.
//! * [`sim`] — discrete-event simulator: the resumable
//!   [`SimCore`](taskdrop_sim::SimCore) stepping API with online task
//!   injection and streaming observers, metrics, cost model and a parallel
//!   multi-trial runner.
//! * [`serve`] — the online serving layer: admission-controlled injection
//!   with pluggable backpressure, multi-shard driving on a shared virtual
//!   clock, and serializable shard checkpoints with mid-flight
//!   kill/restore.
//! * [`obs`] — deterministic virtual-clock telemetry: the
//!   [`Telemetry`](taskdrop_obs::Telemetry) pipeline (metrics registry,
//!   task lifecycle spans, bounded flight recorder, JSONL / Prometheus
//!   exporters) attachable to any layer's observer stream.
//! * [`dag`] — dependency-aware execution on top of the open-world core:
//!   validated [`TaskGraph`](taskdrop_dag::TaskGraph)s, the
//!   [`DagCoordinator`](taskdrop_dag::DagCoordinator) releasing nodes as
//!   predecessors deliver, cascade forfeiture with conserved accounting,
//!   subtree chance pruning and serverless function-chain merging.
//! * [`experiment`] — the fluent
//!   [`ExperimentBuilder`](experiment::ExperimentBuilder) facade: one
//!   chainable, serialisable entry point for scenario + workload + policies
//!   + trial plan.
//! * [`service`] — the serving counterpart: a serialisable
//!   [`ServicePlan`](service::ServicePlan) naming a whole shard fleet, run
//!   to an idle [`ServiceReport`](service::ServiceReport) in one call.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod experiment;
pub mod service;

pub use taskdrop_core as core;
pub use taskdrop_dag as dag;
pub use taskdrop_model as model;
pub use taskdrop_obs as obs;
pub use taskdrop_pmf as pmf;
pub use taskdrop_sched as sched;
pub use taskdrop_serve as serve;
pub use taskdrop_sim as sim;
pub use taskdrop_stats as stats;
pub use taskdrop_workload as workload;

/// Helpers shared by the runnable examples (`examples/*.rs`).
///
/// Not part of the library's supported API (it reads process arguments and
/// panics on unknown flags) — it lives here only because Cargo examples
/// cannot easily share a module.
#[doc(hidden)]
pub mod demo {
    /// The workload scale factor the examples' `--quick` flag maps to.
    ///
    /// Small enough that every example finishes in seconds (the smoke test
    /// in `tests/examples_smoke.rs` runs them all), large enough that the
    /// printed numbers are still qualitatively meaningful.
    pub const QUICK_SCALE: f64 = 0.05;

    /// Parses the examples' command line: `--quick` returns [`QUICK_SCALE`],
    /// no arguments returns 1.0 (each example's documented demo scale).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on any other argument.
    #[must_use]
    pub fn scale_from_args() -> f64 {
        let mut scale = 1.0;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => scale = QUICK_SCALE,
                other => panic!("unknown argument {other}; expected --quick"),
            }
        }
        scale
    }

    /// A [`SimConfig`](taskdrop_sim::SimConfig) whose metric exclusion
    /// boundary shrinks with the workload scale: the paper's default
    /// (exclude the first and last 100 tasks) would exclude an entire
    /// `--quick`-scale workload and report 0 % robustness everywhere.
    #[must_use]
    pub fn scaled_config(scale: f64) -> taskdrop_sim::SimConfig {
        let base = taskdrop_sim::SimConfig::default();
        taskdrop_sim::SimConfig {
            exclude_boundary: (base.exclude_boundary as f64 * scale).round() as usize,
            ..base
        }
    }

    /// Caps a trial count when running below full scale: quick smoke runs
    /// keep at most 2 trials (so multi-trial aggregation is still
    /// exercised) and at least 1. At full scale the count is unchanged.
    #[must_use]
    pub fn quick_trials(trials: usize, scale: f64) -> usize {
        if scale < 1.0 {
            trials.clamp(1, 2)
        } else {
            trials
        }
    }
}

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use crate::experiment::{ExperimentBuilder, ExperimentSpec, ScenarioSpec};
    pub use crate::service::{FleetPlan, ServicePlan, ServiceReport, ShardPlan, ShardReport};
    pub use taskdrop_core::{
        ApproxDropper, DropDecision, DropPolicy, OptimalDropper, ProactiveDropper, ReactiveOnly,
        ThresholdDropper,
    };
    pub use taskdrop_dag::{
        DagCheckpoint, DagCoordinator, DagError, DagStats, DagTap, NodeRef, NodeState, PrunePolicy,
        TaskGraph,
    };
    pub use taskdrop_model::ctx::{CacheStats, PolicyCtx};
    pub use taskdrop_model::view::{
        Assignment, DropContext, MappingInput, QueueView, UnmappedView,
    };
    pub use taskdrop_model::ApproxSpec;
    pub use taskdrop_model::{MachineId, MachineTypeId, PetMatrix, Task, TaskId, TaskTypeId};
    pub use taskdrop_obs::{
        FlightRecorder, FlightSnapshot, MetricsRegistry, SpanTracker, TaskSpan, Telemetry,
    };
    pub use taskdrop_pmf::{chance_of_success, deadline_convolve, Compaction, Pmf, Tick};
    pub use taskdrop_sched::{Edf, Fcfs, HeuristicKind, MappingHeuristic, MinMin, Msd, Pam, Sjf};
    pub use taskdrop_serve::{
        AdmissionController, AdmissionStats, BackpressurePolicy, FleetDriver, FleetShard,
        ServeError, ServiceDriver, Shard, ShardCheckpoint, StealPolicy,
    };
    pub use taskdrop_sim::{
        AdmissionDropKind, Checkpoint, DropKind, DropperKind, EventLog, ForfeitKind,
        MetricsObserver, RunSpec, SimConfig, SimCore, SimError, SimEvent, SimObserver, SimReport,
        SimState, Simulation, StepOutcome, TaskFate, TrialResult, TrialRunner,
    };
    pub use taskdrop_workload::{
        BlueprintNode, BurstySource, DiurnalSource, GraphBlueprint, OfferedTask,
        OversubscriptionLevel, Scenario, TraceSource, TrafficSource, Workload, SPECINT_WINDOW,
        TRANSCODE_WINDOW,
    };
}
