//! # taskdrop — autonomous proactive task dropping for robust HC systems
//!
//! Umbrella crate re-exporting the whole `taskdrop` workspace: a
//! production-quality Rust reproduction of
//! *"Autonomous Task Dropping Mechanism to Achieve Robustness in
//! Heterogeneous Computing Systems"* (Mokhtari, Denninnart, Amini Salehi,
//! 2020).
//!
//! See the individual crates for details:
//!
//! * [`pmf`] — discrete PMFs, convolution, the deadline-aware convolution of
//!   the paper's Equation (1).
//! * [`stats`] — seeded samplers (Gamma, Exponential, Normal), Poisson
//!   arrivals, histograms, summary statistics.
//! * [`model`] — tasks, machines, PET matrix, machine-queue completion-time
//!   chains, instantaneous robustness.
//! * [`sched`] — mapping heuristics: MinMin, MSD, PAM, FCFS, EDF, SJF.
//! * [`core`] — the paper's contribution: proactive dropping heuristic,
//!   optimal subset dropping, threshold baseline.
//! * [`workload`] — SPECint-like and video-transcoding scenario generators.
//! * [`sim`] — discrete-event simulator with metrics, cost model and a
//!   parallel multi-trial runner.

pub use taskdrop_core as core;
pub use taskdrop_model as model;
pub use taskdrop_pmf as pmf;
pub use taskdrop_sched as sched;
pub use taskdrop_sim as sim;
pub use taskdrop_stats as stats;
pub use taskdrop_workload as workload;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use taskdrop_core::{
        ApproxDropper, DropDecision, DropPolicy, OptimalDropper, ProactiveDropper, ReactiveOnly,
        ThresholdDropper,
    };
    pub use taskdrop_model::ApproxSpec;
    pub use taskdrop_model::view::{
        Assignment, DropContext, MappingInput, QueueView, UnmappedView,
    };
    pub use taskdrop_model::{MachineId, MachineTypeId, PetMatrix, Task, TaskId, TaskTypeId};
    pub use taskdrop_pmf::{chance_of_success, deadline_convolve, Compaction, Pmf, Tick};
    pub use taskdrop_sched::{Edf, Fcfs, HeuristicKind, MappingHeuristic, MinMin, Msd, Pam, Sjf};
    pub use taskdrop_sim::{
        DropperKind, RunSpec, SimConfig, SimReport, Simulation, TrialResult, TrialRunner,
    };
    pub use taskdrop_workload::{
        OversubscriptionLevel, Scenario, Workload, SPECINT_WINDOW, TRANSCODE_WINDOW,
    };
}
