//! Offline stand-in for the parts of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with crossbeam's closure signature
//! (`spawn(|scope| ..)`), implemented on top of `std::thread::scope`.

pub mod thread {
    //! Scoped threads.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope in which child threads can borrow from the enclosing stack
    /// frame. Mirrors `crossbeam_utils::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Returns `Err` (like crossbeam) if `f` or any *unjoined*
    /// child panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_is_reported() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
