//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches parking_lot's API shape and semantics: `lock()` returns the
//! guard directly and there is no poisoning — if a thread panicked while
//! holding the lock, later callers still acquire it normally (over data the
//! panicking thread may have left half-updated, exactly like real
//! parking_lot).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-on-poison API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed; `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-on-poison API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
