//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` API shape used by
//! the workspace benches and runs each benchmark for a small, fixed wall
//! clock budget, printing mean iteration time. Indicative, not
//! statistically rigorous — the point is that `cargo bench` runs and
//! `cargo test --benches` compiles.

// A timing harness needs the wall clock; vendored stand-ins sit outside
// the taskdrop_lint scan roots by design.
#![allow(clippy::disallowed_methods)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to the `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    /// In test mode (`cargo test --benches` passes `--test`), run each
    /// benchmark exactly once, only to prove it executes.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, &id.to_string(), |b| f(b));
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.criterion.test_mode, &format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.criterion.test_mode, &format!("{}/{}", self.name, id), |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput hint (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Repeatedly calls `f`, timing it, until the budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        loop {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

fn run_one(test_mode: bool, label: &str, f: impl FnOnce(&mut Bencher)) {
    let budget = if test_mode { Duration::ZERO } else { Duration::from_millis(200) };
    let mut bencher = Bencher { iters_done: 0, elapsed: Duration::ZERO, budget };
    f(&mut bencher);
    if bencher.iters_done > 0 {
        let mean = bencher.elapsed / u32::try_from(bencher.iters_done).unwrap_or(u32::MAX);
        println!("bench: {label:<50} {mean:>12.2?}/iter ({} iters)", bencher.iters_done);
    } else {
        println!("bench: {label:<50} (closure never called iter)");
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
