//! Token-level parser for the derive input.

use proc_macro::{Delimiter, TokenStream, TokenTree};

use crate::{is_group, ContainerAttrs, Field, FieldDefault, Item, Kind, Variant, VariantKind};

pub(crate) fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let mut attrs = ContainerAttrs::default();
    let mut container_default: Option<FieldDefault> = None;
    consume_attrs(&tokens, &mut pos, &mut attrs, &mut container_default);
    assert!(
        container_default.is_none(),
        "container-level #[serde(default)] is not supported by the serde stand-in \
         (put it on individual fields instead)"
    );
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Kind::Unit,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde derive supports structs and enums, found `{other}`"),
    };

    Item { name, attrs, kind }
}

/// Consumes leading `#[..]` attributes. `serde(..)` attributes update
/// `container` / `field_default`; everything else (doc comments, other
/// derives' helpers) is skipped.
fn consume_attrs(
    tokens: &[TokenTree],
    pos: &mut usize,
    container: &mut ContainerAttrs,
    field_default: &mut Option<FieldDefault>,
) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let group = match tokens.get(*pos + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.clone(),
            other => panic!("expected [..] after #, found {other:?}"),
        };
        *pos += 2;

        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            other => panic!("expected serde(..), found {other:?}"),
        };
        parse_serde_args(args, container, field_default);
    }
}

fn parse_serde_args(
    args: TokenStream,
    container: &mut ContainerAttrs,
    field_default: &mut Option<FieldDefault>,
) {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    let mut pos = 0;
    while pos < tokens.len() {
        let key = expect_ident(&tokens, &mut pos);
        let value = if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            match tokens.get(pos) {
                Some(TokenTree::Literal(lit)) => {
                    pos += 1;
                    Some(unquote(&lit.to_string()))
                }
                other => panic!("expected string literal after `{key} =`, found {other:?}"),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("default", None) => *field_default = Some(FieldDefault::Std),
            ("default", Some(path)) => *field_default = Some(FieldDefault::Path(path)),
            ("transparent", None) => container.transparent = true,
            ("try_from", Some(ty)) => container.try_from = Some(ty),
            ("into", Some(ty)) => container.into = Some(ty),
            (other, _) => panic!("unsupported serde attribute `{other}`"),
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let mut ignored = ContainerAttrs::default();
        let mut default = None;
        consume_attrs(&tokens, &mut pos, &mut ignored, &mut default);
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the comma-separated fields of a tuple struct / tuple variant,
/// ignoring per-field attributes and visibility.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (i, tt) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                // The `>` of a `->` return arrow is not a closing bracket.
                '>' if !is_arrow_tail(&tokens, i) => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount by one.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let mut ignored = ContainerAttrs::default();
        let mut ignored_default = None;
        consume_attrs(&tokens, &mut pos, &mut ignored, &mut ignored_default);
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit enum discriminants are not supported by the serde stand-in");
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Skips a type, stopping at a comma at angle-bracket depth zero (or end of
/// input). Parenthesised/bracketed sub-types are single `Group` tokens, so
/// only `<`/`>` need depth tracking.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                // The `>` of a `->` return arrow is not a closing bracket.
                '>' if !is_arrow_tail(tokens, *pos) => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Whether `tokens[i]` (a `>` punct) is the tail of a `->` return arrow:
/// the previous token is a `-` punct with joint spacing.
fn is_arrow_tail(tokens: &[TokenTree], i: usize) -> bool {
    i > 0
        && matches!(&tokens[i - 1], TokenTree::Punct(prev)
            if prev.as_char() == '-' && prev.spacing() == proc_macro::Spacing::Joint)
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(tt) if is_group(tt, Delimiter::Parenthesis)) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn unquote(lit: &str) -> String {
    let lit = lit.trim();
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("expected a plain string literal, found {lit}"));
    inner.to_string()
}
