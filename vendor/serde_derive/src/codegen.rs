//! String-assembled impl generation.

use crate::{Field, FieldDefault, Item, Kind, VariantKind};

const VALUE: &str = "::serde::value::Value";
const ERROR: &str = "::serde::error::Error";

pub(crate) fn serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.attrs.into {
        format!(
            "let __tmp: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__tmp)"
        )
    } else {
        match &item.kind {
            Kind::Struct(fields) if item.attrs.transparent => {
                assert_eq!(fields.len(), 1, "transparent struct `{name}` must have one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            }
            Kind::Struct(fields) => {
                let mut pushes = String::new();
                for f in fields {
                    let fname = &f.name;
                    pushes.push_str(&format!(
                        "__entries.push((::std::string::String::from(\"{fname}\"), \
                         ::serde::Serialize::to_value(&self.{fname})));\n"
                    ));
                }
                format!(
                    "let mut __entries: ::std::vec::Vec<(::std::string::String, {VALUE})> = \
                     ::std::vec::Vec::new();\n{pushes}{VALUE}::Map(__entries)"
                )
            }
            Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Kind::Tuple(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                format!("{VALUE}::Seq(::std::vec![{}])", items.join(", "))
            }
            Kind::Unit => format!("{VALUE}::Null"),
            Kind::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    let tag = format!("::std::string::String::from(\"{vname}\")");
                    match &v.kind {
                        VariantKind::Unit => {
                            arms.push_str(&format!("{name}::{vname} => {VALUE}::Str({tag}),\n"))
                        }
                        VariantKind::Newtype => arms.push_str(&format!(
                            "{name}::{vname}(__f0) => {VALUE}::Map(::std::vec![({tag}, \
                             ::serde::Serialize::to_value(__f0))]),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{vname}({}) => {VALUE}::Map(::std::vec![({tag}, \
                                 {VALUE}::Seq(::std::vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            ));
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), \
                                         ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{vname} {{ {} }} => {VALUE}::Map(::std::vec![({tag}, \
                                 {VALUE}::Map(::std::vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> {VALUE} {{\n{body}\n}}\n}}\n"
    )
}

/// The `None =>` arm of a named-field lookup.
fn missing_field_expr(field: &Field) -> String {
    match &field.default {
        Some(FieldDefault::Std) => "::std::default::Default::default()".to_string(),
        Some(FieldDefault::Path(path)) => format!("{path}()"),
        None => format!(
            "return ::std::result::Result::Err({ERROR}::custom(\
             \"missing field `{}`\"))",
            field.name
        ),
    }
}

/// Builds `Ctor { f: .., .. }` from `__entries: &Vec<(String, Value)>`.
fn named_fields_ctor(ctor: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        inits.push_str(&format!(
            "{fname}: match __entries.iter().find(|(__k, _)| __k == \"{fname}\") {{\n\
             ::std::option::Option::Some((_, __v)) => ::serde::Deserialize::from_value(__v)?,\n\
             ::std::option::Option::None => {},\n}},\n",
            missing_field_expr(f)
        ));
    }
    format!("{ctor} {{\n{inits}}}")
}

pub(crate) fn deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(try_ty) = &item.attrs.try_from {
        format!(
            "let __tmp: {try_ty} = ::serde::Deserialize::from_value(__value)?;\n\
             ::std::convert::TryFrom::try_from(__tmp).map_err({ERROR}::custom)"
        )
    } else {
        match &item.kind {
            Kind::Struct(fields) if item.attrs.transparent => {
                assert_eq!(fields.len(), 1, "transparent struct `{name}` must have one field");
                format!(
                    "::std::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::from_value(__value)? }})",
                    fields[0].name
                )
            }
            Kind::Struct(fields) => format!(
                "match __value {{\n\
                 {VALUE}::Map(__entries) => ::std::result::Result::Ok({}),\n\
                 __other => ::std::result::Result::Err({ERROR}::custom(::std::format!(\
                 \"invalid type for `{name}`: expected object, found {{}}\", __other.kind()))),\n\
                 }}",
                named_fields_ctor(name, fields)
            ),
            Kind::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
            Kind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __value {{\n\
                     {VALUE}::Seq(__items) if __items.len() == {n} => \
                     ::std::result::Result::Ok({name}({})),\n\
                     __other => ::std::result::Result::Err({ERROR}::custom(\
                     \"invalid tuple for `{name}`\")),\n}}",
                    items.join(", ")
                )
            }
            Kind::Unit => format!("::std::result::Result::Ok({name})"),
            Kind::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut tagged_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        )),
                        VariantKind::Newtype => tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => match __inner {{\n\
                                 {VALUE}::Seq(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vname}({})),\n\
                                 _ => ::std::result::Result::Err({ERROR}::custom(\
                                 \"invalid tuple variant `{vname}`\")),\n}},\n",
                                items.join(", ")
                            ));
                        }
                        VariantKind::Struct(fields) => tagged_arms.push_str(&format!(
                            "\"{vname}\" => match __inner {{\n\
                             {VALUE}::Map(__entries) => ::std::result::Result::Ok({}),\n\
                             _ => ::std::result::Result::Err({ERROR}::custom(\
                             \"invalid struct variant `{vname}`\")),\n}},\n",
                            named_fields_ctor(&format!("{name}::{vname}"), fields)
                        )),
                    }
                }
                format!(
                    "match __value {{\n\
                     {VALUE}::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::std::result::Result::Err({ERROR}::custom(::std::format!(\
                     \"unknown variant `{{__other}}` of `{name}`\"))),\n}},\n\
                     {VALUE}::Map(__m) if __m.len() == 1 => {{\n\
                     let (__k, __inner) = &__m[0];\n\
                     match __k.as_str() {{\n{tagged_arms}\
                     __other => ::std::result::Result::Err({ERROR}::custom(::std::format!(\
                     \"unknown variant `{{__other}}` of `{name}`\"))),\n}}\n}},\n\
                     __other => ::std::result::Result::Err({ERROR}::custom(::std::format!(\
                     \"invalid type for enum `{name}`: found {{}}\", __other.kind()))),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &{VALUE}) -> ::std::result::Result<Self, {ERROR}> {{\n\
         {body}\n}}\n}}\n"
    )
}
