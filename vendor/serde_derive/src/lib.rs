//! Hand-written `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stand-in.
//!
//! No `syn`/`quote`: the item is parsed directly from the raw
//! [`proc_macro::TokenStream`] and the generated impl is assembled as a
//! string. Supported shapes (everything the `taskdrop` workspace uses):
//!
//! * structs with named fields, tuple structs (newtype serialises
//!   transparently), unit structs;
//! * enums with unit / newtype / tuple / struct variants, externally
//!   tagged like real serde;
//! * container attributes `transparent`, `try_from = "T"`, `into = "T"`;
//! * field attributes `default`, `default = "path"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod codegen;
mod parse;

/// Derives the stand-in `serde::Serialize` (a `to_value` impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse_item(input);
    codegen::serialize_impl(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize` (a `from_value` impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse_item(input);
    codegen::deserialize_impl(&item).parse().expect("generated Deserialize impl parses")
}

pub(crate) struct Item {
    pub name: String,
    pub attrs: ContainerAttrs,
    pub kind: Kind,
}

#[derive(Default)]
pub(crate) struct ContainerAttrs {
    pub transparent: bool,
    pub try_from: Option<String>,
    pub into: Option<String>,
}

pub(crate) enum Kind {
    /// `struct S { .. }`
    Struct(Vec<Field>),
    /// `struct S( .. );` with the given arity
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { .. }`
    Enum(Vec<Variant>),
}

pub(crate) struct Field {
    pub name: String,
    pub default: Option<FieldDefault>,
}

pub(crate) enum FieldDefault {
    /// `#[serde(default)]`
    Std,
    /// `#[serde(default = "path")]`
    Path(String),
}

pub(crate) struct Variant {
    pub name: String,
    pub kind: VariantKind,
}

pub(crate) enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

pub(crate) fn is_group(tt: &TokenTree, delim: Delimiter) -> bool {
    matches!(tt, TokenTree::Group(g) if g.delimiter() == delim)
}
