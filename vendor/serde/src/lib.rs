//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based data model, this crate funnels all
//! (de)serialisation through a JSON-like [`value::Value`] tree. The derive
//! macros (re-exported from `serde_derive`) generate `to_value` /
//! `from_value` implementations. `serde_json` then renders/parses the tree.
//!
//! This supports exactly what the `taskdrop` workspace needs: structs with
//! named fields, tuple/newtype structs, externally tagged enums, and the
//! container/field attributes `default`, `default = "path"`, `transparent`,
//! `try_from = "T"`, `into = "T"`.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The intermediate tree every type (de)serialises through.

    /// A JSON-like value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// Boolean.
        Bool(bool),
        /// Negative integer (always `< 0`; non-negatives use [`Value::UInt`]).
        Int(i64),
        /// Non-negative integer.
        UInt(u64),
        /// Floating point number.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object, as ordered key/value pairs.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up a key in a [`Value::Map`].
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// A short human-readable name of the variant, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "array",
                Value::Map(_) => "object",
            }
        }
    }
}

pub mod error {
    //! The single error type shared by serialisation and deserialisation.

    /// Deserialisation (or conversion) failure.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl Error {
        /// Creates an error from any displayable message.
        pub fn custom<T: core::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl core::fmt::Display for Error {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}
}

use error::Error;
use value::Value;

/// A type that can be converted into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`], validating as needed.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error::custom(format!("invalid type: expected {expected}, found {}", got.kind()))
}

// --- primitives -----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(unexpected("unsigned integer", other)),
                };
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = u64::from_value(value)?;
        usize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    other => return Err(unexpected("integer", other)),
                };
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = i64::from_value(value)?;
        isize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single character")),
        }
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $( + { let _ = $idx; 1 } )+;
                match value {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Seq(items) => Err(Error::custom(format!(
                        "expected a tuple of length {LEN}, found array of length {}",
                        items.len()
                    ))),
                    other => Err(unexpected("array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
