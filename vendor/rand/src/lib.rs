//! Offline stand-in for the `rand` crate.
//!
//! Provides the `Rng` / `RngCore` / `SeedableRng` trait surface the
//! `taskdrop` workspace uses, with [`rngs::StdRng`] implemented as
//! xoshiro256++ seeded through SplitMix64. The generated *sequences* differ
//! from the real `rand`'s ChaCha12-based `StdRng`, but the workspace only
//! relies on reproducibility under a seed and on distribution quality, both
//! of which xoshiro256++ provides.

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (uniform over the type's range; `f64`/`f32` uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A PRNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, bound)` via Lemire-style rejection on the modulus.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $ty;
                }
                lo + uniform_u64_below(rng, span) as $ty
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $ty = StandardSample::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u: $ty = StandardSample::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman & Vigna),
    /// seeded by expanding a 64-bit seed through SplitMix64.
    ///
    /// Not the real `rand::rngs::StdRng` (ChaCha12); sequences differ, but
    /// quality and reproducibility are equivalent for simulation purposes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let _ = (&mut a, &mut b);
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1.0f64..=20.0);
            assert!((1.0..=20.0).contains(&y));
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
