//! Offline stand-in for `serde_json`: renders and parses the
//! [`serde::value::Value`] tree used by the serde stand-in.

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialisation failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::error::Error> for Error {
    fn from(e: serde::error::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::from_value(&value).map_err(Error::from)
}

// --- writer ---------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(entries) => write_map(out, entries, indent, depth),
    }
}

/// Matches serde_json's convention: integral floats keep a trailing `.0` so
/// the value round-trips as a float.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Real serde_json errors on non-finite floats; emitting null is the
        // closest total behaviour and never occurs for valid PMF data.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, value, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            let key = match self.peek() {
                Some(b'"') => self.parse_string()?,
                _ => return Err(self.err("expected an object key")),
            };
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = core::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| self.err("invalid number"))
        }
    }
}
