//! Deterministic per-test RNG (xoshiro256++, seeded from the test name).

/// The generator driving all strategies of one property test.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds deterministically from a test's fully qualified name (FNV-1a),
    /// so every run of the same test generates the same cases.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = hash;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        TestRng { s }
    }

    /// The next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform usize in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.u64_below((hi - lo + 1) as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
