//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(..)]` header), the
//! `prop_assert*` macros, range and tuple strategies, `prop_map`, and
//! `prop::collection::vec`. Generation is deterministic per test (seeded
//! from the test's module path and name); there is **no shrinking** — a
//! failing case panics with the assertion message directly.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    /// An inclusive length range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.lo, self.len.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(128);
        ProptestConfig { cases }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}
