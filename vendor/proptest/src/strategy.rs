//! The `Strategy` trait and the built-in strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one.
    ///
    /// Panics after 1000 consecutive rejections (degenerate filter).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- integer ranges -------------------------------------------------------

macro_rules! impl_int_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.u64_below((self.end - self.start) as u64) as $ty
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.u64_below(span + 1) as $ty
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, usize);

// --- float ranges ---------------------------------------------------------

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

// --- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategies! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}
